package obs

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
)

// SchemaVersion identifies the flat kernel-report schema emitted by
// `rtrbench <kernel> --format=json|csv` and `report -table1 -json`. Bump it
// when a field changes meaning; additions are backward compatible.
const SchemaVersion = "rtrbench.report/v1"

// PhaseReport is one instrumented phase in the flat report schema.
type PhaseReport struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Calls    int64   `json:"calls"`
	Fraction float64 `json:"fraction"`
}

// StepReport is the per-step latency distribution plus real-time deadline
// accounting — the quantity a real-time suite reports that a plain phase
// breakdown cannot: not just where time went, but how it was distributed
// across the kernel's control/iteration cycles.
type StepReport struct {
	Count           int64   `json:"count"`
	MinSeconds      float64 `json:"min_seconds"`
	MeanSeconds     float64 `json:"mean_seconds"`
	P50Seconds      float64 `json:"p50_seconds"`
	P95Seconds      float64 `json:"p95_seconds"`
	P99Seconds      float64 `json:"p99_seconds"`
	MaxSeconds      float64 `json:"max_seconds"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	DeadlineMisses  int64   `json:"deadline_misses"`
}

// StepsFromSummary converts a histogram summary into the schema form,
// returning nil when nothing was recorded and no deadline was set.
func StepsFromSummary(s Summary) *StepReport {
	if s.Count == 0 && s.Deadline == 0 {
		return nil
	}
	return &StepReport{
		Count:           s.Count,
		MinSeconds:      s.Min.Seconds(),
		MeanSeconds:     s.Mean.Seconds(),
		P50Seconds:      s.P50.Seconds(),
		P95Seconds:      s.P95.Seconds(),
		P99Seconds:      s.P99.Seconds(),
		MaxSeconds:      s.Max.Seconds(),
		DeadlineSeconds: s.Deadline.Seconds(),
		DeadlineMisses:  s.Misses,
	}
}

// StreamReport is the streaming-mode block of rtrbench.report/v1: the
// accounting of a periodic-release run (rtrbench stream), where the kernel
// is driven as a long-lived real-time task and every tick has a release
// time and a deadline. miss_rate is misses/ticks; sheds counts releases
// dropped by the skip-next overload policy; cutoffs counts steps truncated
// at the deadline by the anytime-cutoff policy (cutoffs are a subset of
// misses); overruns counts steps that finished after the next release.
// latency is the release-to-completion distribution, jitter the
// release-to-start distribution. runs/degraded count underlying workload
// executions (the stream restarts the workload when it runs out of steps).
type StreamReport struct {
	Policy          string      `json:"policy"`
	PeriodSeconds   float64     `json:"period_seconds"`
	DeadlineSeconds float64     `json:"deadline_seconds"`
	Ticks           int64       `json:"ticks"`
	Misses          int64       `json:"misses"`
	MissRate        float64     `json:"miss_rate"`
	Sheds           int64       `json:"sheds,omitempty"`
	Cutoffs         int64       `json:"cutoffs,omitempty"`
	Overruns        int64       `json:"overruns,omitempty"`
	Runs            int64       `json:"runs,omitempty"`
	Degraded        int64       `json:"degraded,omitempty"`
	ElapsedSeconds  float64     `json:"elapsed_seconds"`
	Latency         *StepReport `json:"latency,omitempty"`
	Jitter          *StepReport `json:"jitter,omitempty"`
}

// FaultReport is one injected fault that fired during a chaos run,
// attributed to its trial and kernel step.
type FaultReport struct {
	Trial  int    `json:"trial"`
	Step   int64  `json:"step"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// TrialsReport aggregates the measured trials of one kernel in a suite
// sweep (`report -trials N`). It is an optional, backward-compatible
// addition to rtrbench.report/v1: single-run reports omit it. roi_* are the
// per-trial ROI statistics; steps is the latency distribution merged over
// every trial (the per-trial one stays in the top-level steps field).
// degraded counts trials that returned a best-effort partial result; faults
// lists the injected chaos events across all trials.
type TrialsReport struct {
	Trials           int              `json:"trials"`
	Warmup           int              `json:"warmup,omitempty"`
	Retried          int              `json:"retried,omitempty"`
	Degraded         int              `json:"degraded,omitempty"`
	ROIMeanSeconds   float64          `json:"roi_mean_seconds"`
	ROIMinSeconds    float64          `json:"roi_min_seconds"`
	ROIMaxSeconds    float64          `json:"roi_max_seconds"`
	ROIStddevSeconds float64          `json:"roi_stddev_seconds"`
	Counters         map[string]int64 `json:"counters,omitempty"`
	Steps            *StepReport      `json:"steps,omitempty"`
	Faults           []FaultReport    `json:"faults,omitempty"`
}

// KernelReport is one kernel execution in the shared machine-readable
// schema. cmd/rtrbench emits one report per run; cmd/report emits an array
// (one per kernel of the Table I sweep). Fields tied to the paper's
// characterization (Index, PaperBottlenecks, MatchesPaper) are filled only
// by sweeps that know the registry entry.
type KernelReport struct {
	Schema           string             `json:"schema"`
	Kernel           string             `json:"kernel"`
	Stage            string             `json:"stage,omitempty"`
	Index            int                `json:"index,omitempty"`
	ROISeconds       float64            `json:"roi_seconds"`
	Dominant         string             `json:"dominant,omitempty"`
	PaperBottlenecks []string           `json:"paper_bottlenecks,omitempty"`
	MatchesPaper     bool               `json:"matches_paper,omitempty"`
	Inconsistent     bool               `json:"inconsistent,omitempty"`
	Phases           []PhaseReport      `json:"phases,omitempty"`
	Counters         map[string]int64   `json:"counters,omitempty"`
	Metrics          map[string]float64 `json:"metrics,omitempty"`
	// NonfiniteMetrics names metrics whose values were NaN or ±Inf and were
	// dropped from Metrics (JSON cannot encode them). Filled by the Write
	// functions; the names survive so corruption stays visible.
	NonfiniteMetrics []string      `json:"nonfinite_metrics,omitempty"`
	Steps            *StepReport   `json:"steps,omitempty"`
	Trials           *TrialsReport `json:"trials,omitempty"`
	// Stream carries the periodic-release accounting of a streaming run;
	// one-shot runs omit it.
	Stream *StreamReport `json:"stream,omitempty"`
	// Degraded marks a run that returned a best-effort partial result after
	// a deadline or stall (graceful degradation, not failure).
	Degraded bool `json:"degraded,omitempty"`
	// Fault attributes an error to chaos injection (e.g. an injected panic).
	Fault string `json:"fault,omitempty"`
	Error string `json:"error,omitempty"`
}

// sanitizeMetrics moves non-finite metric values out of Metrics and into
// NonfiniteMetrics. encoding/json rejects NaN and ±Inf, so without this a
// single corrupted metric would make the whole report unwritable — the
// exact failure mode a chaos sweep exists to surface, not to die of.
func sanitizeMetrics(r *KernelReport) {
	var bad []string
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return
	}
	sort.Strings(bad)
	clean := make(map[string]float64, len(r.Metrics)-len(bad))
	for k, v := range r.Metrics {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean[k] = v
		}
	}
	r.Metrics = clean
	r.NonfiniteMetrics = append(r.NonfiniteMetrics, bad...)
}

// WriteJSON writes one report as an indented JSON document. Non-finite
// metric values are moved to nonfinite_metrics first (JSON cannot carry
// them).
func WriteJSON(w io.Writer, r KernelReport) error {
	r.Schema = SchemaVersion
	sanitizeMetrics(&r)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONAll writes a sweep of reports as one JSON array, sanitizing
// non-finite metrics like WriteJSON.
func WriteJSONAll(w io.Writer, rs []KernelReport) error {
	out := make([]KernelReport, len(rs))
	copy(out, rs)
	for i := range out {
		out[i].Schema = SchemaVersion
		sanitizeMetrics(&out[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// csvHeader is the flat CSV layout: one row per record. `record` is one of
// roi, phase, counter, metric, step, trial, fault, fault_attribution,
// degraded, error, stream, stream_latency, stream_jitter; durations are in
// seconds. calls and fraction are only meaningful for phase rows, step rows
// (calls = sample count, fraction unused), trial rows (calls = trial
// count), fault rows (name = kind, value = detail, calls = kernel step,
// fraction = trial index), and stream_latency/stream_jitter rows (calls =
// sample count).
var csvHeader = []string{"schema", "kernel", "record", "name", "value", "calls", "fraction"}

// WriteCSVAll writes one or more reports as a single flat CSV table with a
// header row — the uniform exposition format batch tooling (spreadsheets,
// pandas, gnuplot) consumes directly.
func WriteCSVAll(w io.Writer, rs []KernelReport) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rs {
		if err := writeCSVRows(cw, r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes a single report as a flat CSV table with a header row.
func WriteCSV(w io.Writer, r KernelReport) error {
	return WriteCSVAll(w, []KernelReport{r})
}

func writeCSVRows(cw *csv.Writer, r KernelReport) error {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := func(record, name, value string, calls int64, fraction float64) error {
		return cw.Write([]string{
			SchemaVersion, r.Kernel, record, name, value,
			strconv.FormatInt(calls, 10), f(fraction),
		})
	}
	if err := row("roi", "", f(r.ROISeconds), 0, 1); err != nil {
		return err
	}
	if r.Error != "" {
		if err := row("error", "", r.Error, 0, 0); err != nil {
			return err
		}
	}
	if r.Fault != "" {
		if err := row("fault_attribution", "", r.Fault, 0, 0); err != nil {
			return err
		}
	}
	if r.Degraded {
		if err := row("degraded", "", "true", 0, 0); err != nil {
			return err
		}
	}
	for _, p := range r.Phases {
		if err := row("phase", p.Name, f(p.Seconds), p.Calls, p.Fraction); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.Counters) {
		if err := row("counter", k, strconv.FormatInt(r.Counters[k], 10), 0, 0); err != nil {
			return err
		}
	}
	for _, k := range sortedFloatKeys(r.Metrics) {
		if err := row("metric", k, f(r.Metrics[k]), 0, 0); err != nil {
			return err
		}
	}
	if s := r.Steps; s != nil {
		steps := []struct {
			name  string
			value float64
		}{
			{"min", s.MinSeconds}, {"mean", s.MeanSeconds},
			{"p50", s.P50Seconds}, {"p95", s.P95Seconds},
			{"p99", s.P99Seconds}, {"max", s.MaxSeconds},
			{"deadline", s.DeadlineSeconds},
			{"deadline_misses", float64(s.DeadlineMisses)},
		}
		for _, st := range steps {
			if err := row("step", st.name, f(st.value), s.Count, 0); err != nil {
				return err
			}
		}
	}
	if st := r.Stream; st != nil {
		if err := row("stream", "policy", st.Policy, 0, 0); err != nil {
			return err
		}
		scalars := []struct {
			name  string
			value float64
		}{
			{"period", st.PeriodSeconds}, {"deadline", st.DeadlineSeconds},
			{"ticks", float64(st.Ticks)}, {"misses", float64(st.Misses)},
			{"miss_rate", st.MissRate}, {"sheds", float64(st.Sheds)},
			{"cutoffs", float64(st.Cutoffs)}, {"overruns", float64(st.Overruns)},
			{"runs", float64(st.Runs)}, {"degraded", float64(st.Degraded)},
			{"elapsed", st.ElapsedSeconds},
		}
		for _, sc := range scalars {
			if err := row("stream", sc.name, f(sc.value), 0, 0); err != nil {
				return err
			}
		}
		for _, dist := range []struct {
			record string
			s      *StepReport
		}{{"stream_latency", st.Latency}, {"stream_jitter", st.Jitter}} {
			if dist.s == nil {
				continue
			}
			quantiles := []struct {
				name  string
				value float64
			}{
				{"min", dist.s.MinSeconds}, {"mean", dist.s.MeanSeconds},
				{"p50", dist.s.P50Seconds}, {"p95", dist.s.P95Seconds},
				{"p99", dist.s.P99Seconds}, {"max", dist.s.MaxSeconds},
			}
			for _, q := range quantiles {
				if err := row(dist.record, q.name, f(q.value), dist.s.Count, 0); err != nil {
					return err
				}
			}
		}
	}
	if tr := r.Trials; tr != nil {
		trials := []struct {
			name  string
			value float64
		}{
			{"roi_mean", tr.ROIMeanSeconds}, {"roi_min", tr.ROIMinSeconds},
			{"roi_max", tr.ROIMaxSeconds}, {"roi_stddev", tr.ROIStddevSeconds},
		}
		for _, t := range trials {
			if err := row("trial", t.name, f(t.value), int64(tr.Trials), 0); err != nil {
				return err
			}
		}
		// Fault rows: name = kind, value = detail, calls = kernel step,
		// fraction = trial index (reusing the generic columns; the header
		// comment documents the mapping).
		for _, ft := range tr.Faults {
			if err := row("fault", ft.Kind, ft.Detail, ft.Step, float64(ft.Trial)); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
