package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves Go's runtime profilers (net/http/pprof) and a
// /metrics endpoint of live suite counters while a kernel runs — the
// `--httpdebug` flag of cmd/rtrbench. It binds its own mux (nothing leaks
// onto http.DefaultServeMux) and its own listener so tests can use port 0.
type DebugServer struct {
	// URL is the server's base address, e.g. "http://127.0.0.1:6060".
	URL string

	ln  net.Listener
	srv *http.Server
}

// StartDebug starts a debug server on addr (host:port; port 0 picks a free
// port). reg supplies the /metrics counters; nil uses LiveCounters.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	if reg == nil {
		reg = LiveCounters
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WriteMetrics(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "rtrbench debug server\n\n/metrics\n/debug/pprof/\n")
	})

	s := &DebugServer{
		URL: "http://" + ln.Addr().String(),
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() {
		// ErrServerClosed on Close is the expected shutdown path.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the server and releases the port.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
