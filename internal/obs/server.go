package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/ledger"
	"repro/internal/stats"
)

// DebugServer serves Go's runtime profilers (net/http/pprof), a
// Prometheus text-format /metrics endpoint of live suite counters plus
// perf-ledger gauges, and /ledger — the hash-chained longitudinal perf
// history with the latest statistical deltas — while a kernel runs (the
// `--httpdebug` flag of cmd/rtrbench). It binds its own mux (nothing
// leaks onto http.DefaultServeMux) and its own listener so tests can use
// port 0.
type DebugServer struct {
	// URL is the server's base address, e.g. "http://127.0.0.1:6060".
	URL string

	ln  net.Listener
	srv *http.Server
}

// DebugOptions configures StartDebugServer.
type DebugOptions struct {
	// Addr is host:port to bind (port 0 picks a free port).
	Addr string
	// Registry supplies the /metrics counters; nil uses LiveCounters.
	Registry *Registry
	// LedgerPath is the hash-chained perf-ledger file backing /ledger and
	// the ledger gauges on /metrics. The file is re-read per request (it
	// may appear or grow while the server runs); missing is not an error
	// — /ledger then reports an empty chain. Default "PERF_LEDGER.jsonl".
	LedgerPath string
	// Stats configures the latest-deltas comparison (alpha, noise
	// threshold). The zero value uses stats defaults.
	Stats stats.Options
	// Handlers mounts extra routes (pattern → handler) on the server's
	// mux, letting a daemon build its API on the debug surface so
	// /metrics, /ledger, and pprof come for free. Patterns follow
	// http.ServeMux semantics; the built-in routes win on conflict.
	Handlers map[string]http.Handler
	// ReadTimeout, WriteTimeout, and IdleTimeout harden the HTTP server
	// against slow-loris clients and wedged connections. Zero leaves the
	// corresponding limit off (the 5s ReadHeaderTimeout always applies).
	// Long-polling handlers (e.g. ?wait=) must fit inside WriteTimeout.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
}

// DefaultLedgerPath is the conventional ledger location at the repo root,
// written by `benchdiff -ledger append`.
const DefaultLedgerPath = "PERF_LEDGER.jsonl"

// StartDebug starts a debug server on addr (host:port; port 0 picks a free
// port). reg supplies the /metrics counters; nil uses LiveCounters. The
// ledger endpoints use DefaultLedgerPath.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	return StartDebugServer(DebugOptions{Addr: addr, Registry: reg})
}

// ledgerState is the /ledger response document.
type ledgerState struct {
	// Path is the ledger file backing this view.
	Path string `json:"path"`
	// Entries is the chain length.
	Entries int `json:"entries"`
	// ChainOK reports whether the hash chain verifies end to end;
	// ChainError carries the failure when it does not.
	ChainOK    bool   `json:"chain_ok"`
	ChainError string `json:"chain_error,omitempty"`
	// History summarizes every entry, oldest first.
	History []ledgerHistoryEntry `json:"history,omitempty"`
	// LatestDeltas compares the last two entries benchmark by benchmark
	// (absent with fewer than two entries).
	LatestDeltas *benchfmt.Report `json:"latest_deltas,omitempty"`
}

type ledgerHistoryEntry struct {
	Index      int    `json:"index"`
	Date       string `json:"date"`
	Note       string `json:"note,omitempty"`
	Benchmarks int    `json:"benchmarks"`
	Goldens    int    `json:"goldens"`
	Hash       string `json:"hash"`
}

// readLedger loads and summarizes the ledger file for both /ledger and the
// /metrics gauges.
func readLedger(path string, opts stats.Options) ledgerState {
	st := ledgerState{Path: path}
	entries, err := ledger.Load(path)
	if err != nil {
		st.ChainError = err.Error()
		return st
	}
	st.Entries = len(entries)
	if err := ledger.VerifyChain(entries); err != nil {
		st.ChainError = err.Error()
	} else {
		st.ChainOK = true
	}
	for _, e := range entries {
		st.History = append(st.History, ledgerHistoryEntry{
			Index: e.Index, Date: e.Snapshot.Date, Note: e.Note,
			Benchmarks: len(e.Snapshot.Benchmarks), Goldens: len(e.Snapshot.Goldens),
			Hash: e.Hash,
		})
	}
	if old, latest, ok := ledger.LatestPair(entries); ok {
		if rep, err := benchfmt.Diff(old, latest, benchfmt.DiffOptions{Stats: opts, Allocs: true}); err == nil {
			st.LatestDeltas = &rep
		}
	}
	return st
}

// writeLedgerMetrics appends the perf-ledger gauges to the Prometheus
// exposition: chain length and health, and the latest per-benchmark
// medians and deltas, so a scraper sees perf history next to the live
// counters.
func writeLedgerMetrics(w http.ResponseWriter, st ledgerState) {
	b01 := func(ok bool) int {
		if ok {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "# TYPE rtrbench_ledger_entries gauge\nrtrbench_ledger_entries %d\n", st.Entries)
	fmt.Fprintf(w, "# TYPE rtrbench_ledger_chain_ok gauge\nrtrbench_ledger_chain_ok %d\n", b01(st.ChainOK))
	if st.LatestDeltas == nil {
		return
	}
	fmt.Fprintf(w, "# TYPE rtrbench_ledger_ns_op gauge\n")
	fmt.Fprintf(w, "# TYPE rtrbench_ledger_delta_pct gauge\n")
	fmt.Fprintf(w, "# TYPE rtrbench_ledger_regression gauge\n")
	for _, d := range st.LatestDeltas.Deltas {
		if d.Verdict == benchfmt.VerdictOnlyOld {
			continue
		}
		name := sanitizeMetricName(d.Name)
		fmt.Fprintf(w, "rtrbench_ledger_ns_op{benchmark=%q} %g\n", name, d.New.Median)
		if d.Verdict != benchfmt.VerdictOnlyNew {
			fmt.Fprintf(w, "rtrbench_ledger_delta_pct{benchmark=%q} %g\n", name, d.Delta)
			fmt.Fprintf(w, "rtrbench_ledger_regression{benchmark=%q} %d\n",
				name, b01(d.Verdict == benchfmt.VerdictRegression))
		}
	}
}

// StartDebugServer starts the debug server described by opts.
func StartDebugServer(opts DebugOptions) (*DebugServer, error) {
	reg := opts.Registry
	if reg == nil {
		reg = LiveCounters
	}
	ledgerPath := opts.LedgerPath
	if ledgerPath == "" {
		ledgerPath = DefaultLedgerPath
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", opts.Addr, err)
	}

	mux := http.NewServeMux()
	builtin := map[string]bool{
		"/debug/pprof/": true, "/debug/pprof/cmdline": true, "/debug/pprof/profile": true,
		"/debug/pprof/symbol": true, "/debug/pprof/trace": true,
		"/metrics": true, "/ledger": true, "/": true,
	}
	for pattern, h := range opts.Handlers {
		if builtin[pattern] {
			continue
		}
		mux.Handle(pattern, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WriteMetrics(w); err != nil {
			return
		}
		writeLedgerMetrics(w, readLedger(ledgerPath, opts.Stats))
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(readLedger(ledgerPath, opts.Stats))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "rtrbench debug server\n\n/metrics\n/ledger\n/debug/pprof/\n")
	})

	s := &DebugServer{
		URL: "http://" + ln.Addr().String(),
		ln:  ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       opts.ReadTimeout,
			WriteTimeout:      opts.WriteTimeout,
			IdleTimeout:       opts.IdleTimeout,
		},
	}
	go func() {
		// ErrServerClosed on Close is the expected shutdown path.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the server and releases the port.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
