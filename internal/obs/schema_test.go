package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func sampleReport() KernelReport {
	return KernelReport{
		Kernel:     "rrt",
		Stage:      "Planning",
		Index:      8,
		ROISeconds: 0.125,
		Dominant:   "collision",
		Phases: []PhaseReport{
			{Name: "collision", Seconds: 0.08, Calls: 4000, Fraction: 0.64},
			{Name: "nn", Seconds: 0.03, Calls: 4000, Fraction: 0.24},
		},
		Counters: map[string]int64{"seg_checks": 123},
		Metrics:  map[string]float64{"path_cost_rad": 3.5, "found": 1},
		Steps: &StepReport{
			Count: 4000, P50Seconds: 2e-5, P95Seconds: 6e-5,
			P99Seconds: 9e-5, MaxSeconds: 4e-4,
			DeadlineSeconds: 1e-4, DeadlineMisses: 7,
		},
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Schema != SchemaVersion {
		t.Fatalf("schema = %q", back.Schema)
	}
	if back.Kernel != "rrt" || back.Steps == nil || back.Steps.DeadlineMisses != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Phases[0].Name != "collision" || back.Metrics["path_cost_rad"] != 3.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteJSONAll(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONAll(&buf, []KernelReport{sampleReport(), {Kernel: "pfl", Error: "boom"}}); err != nil {
		t.Fatal(err)
	}
	var back []KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Error != "boom" || back[1].Schema != SchemaVersion {
		t.Fatalf("sweep round trip: %+v", back)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleReport()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) < 2 || rows[0][0] != "schema" {
		t.Fatalf("missing header: %v", rows)
	}
	kinds := map[string]int{}
	for _, r := range rows[1:] {
		if len(r) != len(csvHeader) {
			t.Fatalf("ragged row: %v", r)
		}
		kinds[r[2]]++
	}
	if kinds["roi"] != 1 || kinds["phase"] != 2 || kinds["counter"] != 1 || kinds["metric"] != 2 || kinds["step"] == 0 {
		t.Fatalf("record kinds = %v", kinds)
	}
}

func TestWriteTraceValidAndLoadable(t *testing.T) {
	events := []TraceEvent{
		{Name: "roi", Ph: "X", Ts: 0, Dur: 1000, Pid: TracePid, Tid: TraceTidPhases},
		{Name: "collision", Ph: "X", Ts: 10, Dur: 50, Pid: TracePid, Tid: TraceTidPhases},
		{Name: "deadline-miss", Ph: "i", Ts: 400, Pid: TracePid, Tid: TraceTidSteps, S: "t"},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events, map[string]string{"kernel": "rrt"}); err != nil {
		t.Fatal(err)
	}
	// The trace_event importer requires a traceEvents array of objects with
	// name/ph/ts/pid/tid; verify the shape generically.
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[field]; !ok {
				t.Fatalf("event missing %q: %v", field, e)
			}
		}
	}
	// An empty trace is still a valid document.
	buf.Reset()
	if err := WriteTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace = %s", buf.String())
	}
}

func TestRegistryAndMetrics(t *testing.T) {
	reg := &Registry{}
	reg.Add("steps", 3)
	reg.Add("steps", 2)
	reg.Add("deadline misses", 1) // name needs sanitizing
	snap := reg.Snapshot()
	if snap["steps"] != 5 || snap["deadline misses"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rtrbench_steps 5") || !strings.Contains(out, "rtrbench_deadline_misses 1") {
		t.Fatalf("metrics output:\n%s", out)
	}
	reg.Reset()
	if reg.Snapshot()["steps"] != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestDebugServer(t *testing.T) {
	reg := &Registry{}
	reg.Add("runs", 1)
	s, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	for path, want := range map[string]string{
		"/metrics":      "rtrbench_runs 1",
		"/debug/pprof/": "profiles",
		"/":             "rtrbench debug server",
	} {
		resp, err := client.Get(s.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(body.String(), want) {
			t.Fatalf("GET %s: status %d body %q", path, resp.StatusCode, body.String())
		}
	}
}

// TestWriteJSONSanitizesNonfiniteMetrics checks a chaos-corrupted metric
// (NaN/Inf) cannot make a report unwritable: encoding/json rejects
// non-finite numbers, so the writers drop them into nonfinite_metrics.
func TestWriteJSONSanitizesNonfiniteMetrics(t *testing.T) {
	r := KernelReport{
		Kernel: "pfl",
		Metrics: map[string]float64{
			"good":     1.5,
			"bad_nan":  math.NaN(),
			"bad_inf":  math.Inf(1),
			"bad_ninf": math.Inf(-1),
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatalf("WriteJSON with non-finite metrics: %v", err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 1 || back.Metrics["good"] != 1.5 {
		t.Errorf("Metrics = %v, want only good=1.5", back.Metrics)
	}
	want := []string{"bad_inf", "bad_nan", "bad_ninf"}
	if len(back.NonfiniteMetrics) != 3 {
		t.Fatalf("NonfiniteMetrics = %v, want %v", back.NonfiniteMetrics, want)
	}
	for i, name := range want {
		if back.NonfiniteMetrics[i] != name {
			t.Errorf("NonfiniteMetrics[%d] = %q, want %q", i, back.NonfiniteMetrics[i], name)
		}
	}
	// The caller's map must not be mutated by the write.
	if len(r.Metrics) != 4 {
		t.Errorf("caller's Metrics mutated: %v", r.Metrics)
	}
}

// TestWriteFaultAndDegraded checks chaos fields round-trip through JSON and
// surface as CSV rows.
func TestWriteFaultAndDegraded(t *testing.T) {
	r := KernelReport{
		Kernel:   "ekfslam",
		Degraded: true,
		Fault:    "injected panic at step 3",
		Trials: &TrialsReport{
			Trials:   2,
			Degraded: 1,
			Retried:  1,
			Faults: []FaultReport{
				{Trial: 0, Step: 5, Kind: "nan", Detail: "measurement -> NaN"},
				{Trial: 1, Step: 9, Kind: "stall", Detail: "1ms"},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !back.Degraded || back.Fault != r.Fault {
		t.Errorf("degraded/fault lost: %+v", back)
	}
	if back.Trials == nil || len(back.Trials.Faults) != 2 || back.Trials.Faults[1].Kind != "stall" {
		t.Errorf("trial faults lost: %+v", back.Trials)
	}
	if back.Trials.Degraded != 1 || back.Trials.Retried != 1 {
		t.Errorf("trial degraded/retried lost: %+v", back.Trials)
	}

	buf.Reset()
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"degraded", "fault_attribution", "fault,nan", "fault,stall"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
