package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n, dim int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = r.Uniform(-10, 10)
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := New(3, nil)
	if _, _, ok := tr.Nearest([]float64{0, 0, 0}); ok {
		t.Fatal("Nearest on empty tree reported a result")
	}
	if got := tr.Radius([]float64{0, 0, 0}, 1); len(got) != 0 {
		t.Fatal("Radius on empty tree returned points")
	}
	if got := tr.KNearest([]float64{0, 0, 0}, 3); len(got) != 0 {
		t.Fatal("KNearest on empty tree returned points")
	}
}

func TestNearestSinglePoint(t *testing.T) {
	tr := New(2, nil)
	tr.Insert([]float64{1, 2}, 42)
	id, d2, ok := tr.Nearest([]float64{4, 6})
	if !ok || id != 42 || math.Abs(d2-25) > 1e-12 {
		t.Fatalf("Nearest = (%d, %v, %v)", id, d2, ok)
	}
}

func TestNearestMatchesLinearOracle(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(5)
		n := 1 + r.Intn(200)
		pts := randomPoints(r, n, dim)
		tr := New(dim, nil)
		lin := NewLinear(dim, nil)
		for i, p := range pts {
			tr.Insert(p, i)
			lin.Insert(p, i)
		}
		for q := 0; q < 20; q++ {
			query := randomPoints(r, 1, dim)[0]
			_, d1, ok1 := tr.Nearest(query)
			_, d2, ok2 := lin.Nearest(query)
			if ok1 != ok2 || math.Abs(d1-d2) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusMatchesLinearOracle(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(4)
		n := 1 + r.Intn(150)
		pts := randomPoints(r, n, dim)
		tr := New(dim, nil)
		lin := NewLinear(dim, nil)
		for i, p := range pts {
			tr.Insert(p, i)
			lin.Insert(p, i)
		}
		query := randomPoints(r, 1, dim)[0]
		r2 := r.Uniform(1, 50)
		a := tr.Radius(query, r2)
		b := lin.Radius(query, r2)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKNearestOrderedAndCorrect(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(3)
		n := 5 + r.Intn(100)
		pts := randomPoints(r, n, dim)
		tr := New(dim, nil)
		for i, p := range pts {
			tr.Insert(p, i)
		}
		query := randomPoints(r, 1, dim)[0]
		k := 1 + r.Intn(10)
		got := tr.KNearest(query, k)

		// Oracle: sort all points by distance.
		type pd struct {
			id int
			d  float64
		}
		all := make([]pd, n)
		for i, p := range pts {
			all[i] = pd{i, SqEuclidean(p, query)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })

		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			return false
		}
		// Compare by distance (ties make ID comparison fragile).
		for i, id := range got {
			if math.Abs(SqEuclidean(pts[id], query)-all[i].d) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKNearestDegenerateK(t *testing.T) {
	tr := New(2, nil)
	tr.Insert([]float64{0, 0}, 0)
	if got := tr.KNearest([]float64{1, 1}, 0); got != nil {
		t.Fatal("k=0 returned points")
	}
	if got := tr.KNearest([]float64{1, 1}, 5); len(got) != 1 {
		t.Fatalf("k>n returned %d points", len(got))
	}
}

func TestCustomMetric(t *testing.T) {
	// Manhattan-squared-ish metric: just |dx| + |dy| (still valid for
	// nearest as long as both structures share it).
	manhattan := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
	// NOTE: k-d pruning assumes the metric dominates per-axis squared
	// distance; Manhattan >= per-axis |d| >= d² is not generally true, so
	// only exercise the Linear index with custom metrics.
	lin := NewLinear(2, manhattan)
	lin.Insert([]float64{0, 0}, 0)
	lin.Insert([]float64{3, 0}, 1)
	id, d, ok := lin.Nearest([]float64{2, 0})
	if !ok || id != 1 || d != 1 {
		t.Fatalf("Nearest = (%d, %v, %v)", id, d, ok)
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	New(3, nil).Insert([]float64{1, 2}, 0)
}

func TestInsertCopiesPoint(t *testing.T) {
	tr := New(2, nil)
	p := []float64{1, 1}
	tr.Insert(p, 0)
	p[0] = 99 // mutate caller's slice
	_, d2, _ := tr.Nearest([]float64{1, 1})
	if d2 != 0 {
		t.Fatal("tree aliased the caller's point slice")
	}
}

func TestDistCallsCounted(t *testing.T) {
	r := rng.New(4)
	tr := New(3, nil)
	for i, p := range randomPoints(r, 100, 3) {
		tr.Insert(p, i)
	}
	before := tr.DistCalls
	tr.Nearest([]float64{0, 0, 0})
	if tr.DistCalls <= before {
		t.Fatal("DistCalls not incremented")
	}
	// The k-d tree should prune: far fewer than n distance calls on
	// clustered queries (statistical, generous bound).
	calls := tr.DistCalls - before
	if calls > 100 {
		t.Fatalf("nearest visited %d nodes out of 100 — no pruning?", calls)
	}
}

func TestLen(t *testing.T) {
	tr := New(2, nil)
	lin := NewLinear(2, nil)
	for i := 0; i < 10; i++ {
		tr.Insert([]float64{float64(i), 0}, i)
		lin.Insert([]float64{float64(i), 0}, i)
	}
	if tr.Len() != 10 || lin.Len() != 10 {
		t.Fatalf("Len = %d / %d", tr.Len(), lin.Len())
	}
}

// TestCloneIndependent pins the Clone contract: identical query results,
// independent counters and scratch, and no structural sharing that would let
// an insert into one tree corrupt the other.
func TestCloneIndependent(t *testing.T) {
	r := rng.New(5)
	tr := New(3, nil)
	pts := randomPoints(r, 200, 3)
	for i, p := range pts {
		tr.Insert(p, i)
	}
	c := tr.Clone()
	if c.Len() != tr.Len() {
		t.Fatalf("clone has %d points, original %d", c.Len(), tr.Len())
	}
	for _, q := range randomPoints(r, 50, 3) {
		wantID, wantD, _ := tr.Nearest(q)
		gotID, gotD, _ := c.Nearest(q)
		if wantID != gotID || wantD != gotD {
			t.Fatalf("clone Nearest (%d, %v) != original (%d, %v)", gotID, gotD, wantID, wantD)
		}
		wantK := tr.KNearest(q, 7)
		gotK := c.KNearest(q, 7)
		for i := range wantK {
			if wantK[i] != gotK[i] {
				t.Fatalf("clone KNearest %v != original %v", gotK, wantK)
			}
		}
	}
	if c.DistCalls == 0 || c.DistCalls != tr.DistCalls {
		t.Fatalf("counters diverged unexpectedly: clone %d, original %d", c.DistCalls, tr.DistCalls)
	}
	// Inserting into the original must not reach the clone (and vice versa).
	tr.Insert([]float64{0.5, 0.5, 0.5}, 999)
	if c.Len() == tr.Len() {
		t.Fatal("insert into original grew the clone")
	}
	before := tr.DistCalls
	c.Nearest(pts[0])
	if tr.DistCalls != before {
		t.Fatal("clone query incremented the original's DistCalls")
	}
}
