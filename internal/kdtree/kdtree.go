// Package kdtree implements a k-d tree over n-dimensional float64 points.
// It is the nearest-neighbor substrate behind the sampling-based planners
// (RRT, RRT*, PRM connect nearby configuration-space samples) and ICP's
// correspondence search in scene reconstruction — the operations the paper
// identifies as taking up to 31% (rrt) and 49% (rrtstar) of execution time.
//
// A linear-scan fallback (Linear) with the same interface exists both as a
// correctness oracle for the property tests and as the ablation baseline for
// the nearest-neighbor benchmarks.
package kdtree

import (
	"math"
	"sort"
)

// Metric computes the squared distance between two points of equal
// dimension. Planners over angular configuration spaces may substitute a
// wrap-around metric.
type Metric func(a, b []float64) float64

// SqEuclidean is the default squared L2 metric.
func SqEuclidean(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Tree is a k-d tree with incremental insertion. Points are referenced by
// the integer payload supplied at insert time (typically a node index in the
// planner's own storage); the tree keeps its own copy of coordinates in a
// flat arena (one []float64 for all points, indexed by insertion order), so
// inserting amortizes to zero small-object allocations and point access is
// cache-friendly during traversal.
type Tree struct {
	dim    int
	metric Metric
	nodes  []node
	pts    []float64 // arena: node i's point is pts[i*dim : (i+1)*dim]
	root   int
	knnH   maxHeap // scratch for KNearestAppend; makes it non-reentrant
	// DistCalls counts metric evaluations; the benchmark harness reads it
	// to report nearest-neighbor work the way the paper's profiles do.
	DistCalls int64
}

type node struct {
	payload     int
	axis        int
	left, right int // -1 = none
}

// New returns an empty tree over points of the given dimension. A nil metric
// defaults to squared Euclidean distance.
func New(dim int, metric Metric) *Tree {
	if dim <= 0 {
		panic("kdtree: non-positive dimension")
	}
	if metric == nil {
		metric = SqEuclidean
	}
	return &Tree{dim: dim, metric: metric, root: -1}
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Clone returns an independent copy of the tree: same points, same shape,
// same payloads, but fresh query scratch and a zeroed DistCalls counter.
// KNearestAppend's candidate heap makes a Tree non-reentrant, so parallel
// searchers take one clone per worker; two slice copies make that cheap.
func (t *Tree) Clone() *Tree {
	c := &Tree{dim: t.dim, metric: t.metric, root: t.root}
	c.nodes = append([]node(nil), t.nodes...)
	c.pts = append([]float64(nil), t.pts...)
	return c
}

// pt returns node i's point, a view into the arena.
func (t *Tree) pt(i int) []float64 {
	return t.pts[i*t.dim : (i+1)*t.dim]
}

// Insert adds a point with the given payload. The point's coordinates are
// copied into the tree's arena.
func (t *Tree) Insert(point []float64, payload int) {
	if len(point) != t.dim {
		panic("kdtree: dimension mismatch")
	}
	idx := len(t.nodes)
	t.pts = append(t.pts, point...)
	t.nodes = append(t.nodes, node{payload: payload, left: -1, right: -1})
	p := t.pt(idx)
	if t.root == -1 {
		t.root = idx
		return
	}
	cur := t.root
	for {
		n := &t.nodes[cur]
		axis := n.axis
		if p[axis] < t.pt(cur)[axis] {
			if n.left == -1 {
				n.left = idx
				t.nodes[idx].axis = (axis + 1) % t.dim
				return
			}
			cur = n.left
		} else {
			if n.right == -1 {
				n.right = idx
				t.nodes[idx].axis = (axis + 1) % t.dim
				return
			}
			cur = n.right
		}
	}
}

// Nearest returns the payload and squared distance of the point closest to
// q. ok is false when the tree is empty.
func (t *Tree) Nearest(q []float64) (payload int, sqDist float64, ok bool) {
	if t.root == -1 {
		return 0, 0, false
	}
	best := -1
	bestD := math.Inf(1)
	t.nearest(t.root, q, &best, &bestD)
	return t.nodes[best].payload, bestD, true
}

func (t *Tree) nearest(idx int, q []float64, best *int, bestD *float64) {
	n := &t.nodes[idx]
	p := t.pt(idx)
	t.DistCalls++
	if d := t.metric(p, q); d < *bestD {
		*bestD = d
		*best = idx
	}
	axis := n.axis
	diff := q[axis] - p[axis]
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	if near != -1 {
		t.nearest(near, q, best, bestD)
	}
	// The far subtree can only contain a closer point if the splitting
	// hyperplane is within the current best radius.
	if far != -1 && diff*diff < *bestD {
		t.nearest(far, q, best, bestD)
	}
}

// Radius returns the payloads of all points within squared distance r2 of q,
// in arbitrary order. RRT* uses it to collect the rewiring neighborhood.
func (t *Tree) Radius(q []float64, r2 float64) []int {
	return t.RadiusAppend(q, r2, nil)
}

// RadiusAppend appends the payloads of all points within squared distance r2
// of q to out (typically buf[:0] of a caller-owned buffer) and returns the
// extended slice — the allocation-free form the planners' steady-state loops
// use.
func (t *Tree) RadiusAppend(q []float64, r2 float64, out []int) []int {
	if t.root == -1 {
		return out
	}
	t.radius(t.root, q, r2, &out)
	return out
}

func (t *Tree) radius(idx int, q []float64, r2 float64, out *[]int) {
	n := &t.nodes[idx]
	p := t.pt(idx)
	t.DistCalls++
	if t.metric(p, q) <= r2 {
		*out = append(*out, n.payload)
	}
	axis := n.axis
	diff := q[axis] - p[axis]
	if n.left != -1 && (diff < 0 || diff*diff <= r2) {
		t.radius(n.left, q, r2, out)
	}
	if n.right != -1 && (diff >= 0 || diff*diff <= r2) {
		t.radius(n.right, q, r2, out)
	}
}

// KNearest returns the payloads of the k points closest to q, ordered by
// increasing distance. Fewer than k results are returned when the tree is
// smaller than k.
func (t *Tree) KNearest(q []float64, k int) []int {
	return t.KNearestAppend(q, k, nil)
}

// KNearestAppend appends the payloads of the k points closest to q to out
// (typically buf[:0] of a caller-owned buffer), ordered by increasing
// distance, and returns the extended slice. The candidate heap lives in the
// tree, so concurrent KNearestAppend calls on one tree are not safe.
func (t *Tree) KNearestAppend(q []float64, k int, out []int) []int {
	if k <= 0 || t.root == -1 {
		return out
	}
	h := &t.knnH
	h.items = h.items[:0]
	t.kNearest(t.root, q, k, h)
	sort.Sort(h) // heap order is arbitrary; present nearest-first
	for _, it := range h.items {
		out = append(out, t.nodes[it.idx].payload)
	}
	return out
}

func (t *Tree) kNearest(idx int, q []float64, k int, h *maxHeap) {
	n := &t.nodes[idx]
	p := t.pt(idx)
	t.DistCalls++
	d := t.metric(p, q)
	if h.Len() < k {
		h.push(item{idx: idx, d: d})
	} else if d < h.items[0].d {
		h.items[0] = item{idx: idx, d: d}
		h.down(0)
	}
	axis := n.axis
	diff := q[axis] - p[axis]
	near, far := n.left, n.right
	if diff >= 0 {
		near, far = n.right, n.left
	}
	if near != -1 {
		t.kNearest(near, q, k, h)
	}
	if far != -1 && (h.Len() < k || diff*diff < h.items[0].d) {
		t.kNearest(far, q, k, h)
	}
}

type item struct {
	idx int
	d   float64
}

// maxHeap is a fixed-size max-heap on distance, keeping the k best seen.
type maxHeap struct{ items []item }

func (h *maxHeap) Len() int           { return len(h.items) }
func (h *maxHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *maxHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *maxHeap) push(it item) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d >= h.items[i].d {
			break
		}
		h.Swap(i, p)
		i = p
	}
}

func (h *maxHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].d > h.items[largest].d {
			largest = l
		}
		if r < n && h.items[r].d > h.items[largest].d {
			largest = r
		}
		if largest == i {
			return
		}
		h.Swap(i, largest)
		i = largest
	}
}

// Linear is a brute-force nearest-neighbor index with the same operations as
// Tree. It serves as the correctness oracle in tests and as the ablation
// baseline in the nearest-neighbor benchmarks. Like Tree, it stores point
// coordinates in a flat insertion-order arena.
type Linear struct {
	dim       int
	metric    Metric
	pts       []float64 // arena: point i is pts[i*dim : (i+1)*dim]
	payloads  []int
	DistCalls int64
}

// NewLinear returns an empty linear index.
func NewLinear(dim int, metric Metric) *Linear {
	if metric == nil {
		metric = SqEuclidean
	}
	return &Linear{dim: dim, metric: metric}
}

// Len returns the number of points in the index.
func (l *Linear) Len() int { return len(l.payloads) }

func (l *Linear) pt(i int) []float64 {
	return l.pts[i*l.dim : (i+1)*l.dim]
}

// Insert adds a point with the given payload. The coordinates are copied
// into the index's arena.
func (l *Linear) Insert(point []float64, payload int) {
	if len(point) != l.dim {
		panic("kdtree: dimension mismatch")
	}
	l.pts = append(l.pts, point...)
	l.payloads = append(l.payloads, payload)
}

// Nearest returns the payload and squared distance of the closest point.
func (l *Linear) Nearest(q []float64) (payload int, sqDist float64, ok bool) {
	if len(l.payloads) == 0 {
		return 0, 0, false
	}
	best := 0
	bestD := math.Inf(1)
	for i := range l.payloads {
		l.DistCalls++
		if d := l.metric(l.pt(i), q); d < bestD {
			bestD, best = d, i
		}
	}
	return l.payloads[best], bestD, true
}

// Radius returns payloads of all points within squared distance r2 of q.
func (l *Linear) Radius(q []float64, r2 float64) []int {
	var out []int
	for i := range l.payloads {
		l.DistCalls++
		if l.metric(l.pt(i), q) <= r2 {
			out = append(out, l.payloads[i])
		}
	}
	return out
}
