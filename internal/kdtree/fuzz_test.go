package kdtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// buildPair inserts the same pseudo-random point set into a Tree and a
// Linear oracle. Coordinates are drawn from a small lattice so exact ties
// and duplicate points occur often — the cases where a traversal bug is
// easiest to hide.
func buildPair(seed int64, dim, n int) (*Tree, *Linear, [][]float64) {
	r := rng.New(seed)
	tr := New(dim, nil)
	ln := NewLinear(dim, nil)
	pts := make([][]float64, n)
	p := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := range p {
			p[d] = math.Floor(r.Uniform(-4, 4)*2) / 2 // lattice step 0.5
		}
		tr.Insert(p, i)
		ln.Insert(p, i)
		pts[i] = append([]float64(nil), p...)
	}
	return tr, ln, pts
}

// FuzzKDTreeNearest differentially checks Tree against the brute-force
// Linear oracle: nearest distances must match exactly (payloads may differ
// only on exact ties), Radius must return the same payload set, and KNearest
// distances must match the sorted brute-force distance list. scripts/ci.sh
// runs this fuzz target briefly under -race as a smoke test.
func FuzzKDTreeNearest(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(16))
	f.Add(int64(42), uint8(1), uint8(3))
	f.Add(int64(7), uint8(4), uint8(64))
	f.Add(int64(99), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, dimB, nB uint8) {
		dim := int(dimB)%4 + 1
		n := int(nB)%64 + 1
		tr, ln, pts := buildPair(seed, dim, n)

		r := rng.New(seed ^ 0x5eed)
		q := make([]float64, dim)
		for trial := 0; trial < 8; trial++ {
			if trial < len(pts) {
				copy(q, pts[trial]) // exact hits: distance 0, forced ties
			} else {
				for d := range q {
					q[d] = r.Uniform(-5, 5)
				}
			}

			// Nearest: the squared distance is uniquely defined even when
			// the argmin is not.
			tp, td, tok := tr.Nearest(q)
			lp, ld, lok := ln.Nearest(q)
			if tok != lok {
				t.Fatalf("Nearest ok mismatch: tree %v, linear %v", tok, lok)
			}
			if td != ld {
				t.Fatalf("Nearest distance mismatch: tree %v (payload %d), linear %v (payload %d)", td, tp, ld, lp)
			}
			if SqEuclidean(pts[tp], q) != td {
				t.Fatalf("Nearest payload %d does not realize reported distance %v", tp, td)
			}

			// Radius: identical payload sets.
			r2 := r.Uniform(0, 30)
			got := append([]int(nil), tr.RadiusAppend(q, r2, nil)...)
			want := ln.Radius(q, r2)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("Radius size mismatch: tree %d, linear %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Radius payload sets differ at %d: tree %v, linear %v", i, got, want)
				}
			}

			// KNearest: the sorted distance lists must agree with brute
			// force even when tie-broken payloads differ.
			k := int(r.Uniform(1, 9))
			kn := tr.KNearestAppend(q, k, nil)
			brute := make([]float64, len(pts))
			for i, p := range pts {
				brute[i] = SqEuclidean(p, q)
			}
			sort.Float64s(brute)
			wantLen := k
			if wantLen > len(pts) {
				wantLen = len(pts)
			}
			if len(kn) != wantLen {
				t.Fatalf("KNearest returned %d payloads, want %d", len(kn), wantLen)
			}
			prev := math.Inf(-1)
			for i, p := range kn {
				d := SqEuclidean(pts[p], q)
				if d < prev {
					t.Fatalf("KNearest not sorted: distance %v after %v", d, prev)
				}
				prev = d
				if d != brute[i] {
					t.Fatalf("KNearest rank %d distance %v, brute force %v", i, d, brute[i])
				}
			}
		}
	})
}

// TestAppendFormsReuseBuffer pins the allocation contract of the *Append
// query forms: with a warm caller-owned buffer (and a warm internal
// candidate heap), steady-state queries do not allocate.
func TestAppendFormsReuseBuffer(t *testing.T) {
	tr, _, pts := buildPair(3, 3, 200)
	q := []float64{0.1, -0.2, 0.3}

	nbr := make([]int, 0, len(pts))
	tr.KNearestAppend(q, 8, nbr[:0]) // warm the internal heap
	if allocs := testing.AllocsPerRun(100, func() {
		nbr = tr.RadiusAppend(q, 4.0, nbr[:0])
	}); allocs != 0 {
		t.Errorf("RadiusAppend allocates %v per warm query", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		nbr = tr.KNearestAppend(q, 8, nbr[:0])
	}); allocs != 0 {
		t.Errorf("KNearestAppend allocates %v per warm query", allocs)
	}

	// The Append forms must agree with the allocating ones.
	a := tr.Radius(q, 4.0)
	b := tr.RadiusAppend(q, 4.0, nil)
	if len(a) != len(b) {
		t.Fatalf("Radius/RadiusAppend length mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Radius/RadiusAppend differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := tr.KNearest(q, 8)
	d := tr.KNearestAppend(q, 8, nil)
	if len(c) != len(d) {
		t.Fatalf("KNearest/KNearestAppend length mismatch: %d vs %d", len(c), len(d))
	}
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("KNearest/KNearestAppend differ at %d: %d vs %d", i, c[i], d[i])
		}
	}
}
