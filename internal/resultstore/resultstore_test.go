package resultstore

import (
	"fmt"
	"sync"
	"testing"
)

func TestLookupPutRoundTrip(t *testing.T) {
	s := New(Options{})
	if _, _, ok := s.Lookup("req1"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put("req1", "d1", []byte(`{"a":1}`))

	digest, doc, ok := s.Lookup("req1")
	if !ok || digest != "d1" || string(doc) != `{"a":1}` {
		t.Fatalf("Lookup = (%q, %q, %v)", digest, doc, ok)
	}
	if got, ok := s.Get("d1"); !ok || string(got) != `{"a":1}` {
		t.Fatalf("Get(d1) = (%q, %v)", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on absent digest reported ok")
	}

	hits, misses, entries := s.Stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (1, 1, 1)", hits, misses, entries)
	}
}

// TestSharedDigest: two request keys naming the same answer share one
// stored document, and the first document wins (content-addressed).
func TestSharedDigest(t *testing.T) {
	s := New(Options{})
	s.Put("req1", "d1", []byte("original"))
	s.Put("req2", "d1", []byte("impostor"))
	if _, doc, ok := s.Lookup("req2"); !ok || string(doc) != "original" {
		t.Fatalf("Lookup(req2) = (%q, %v), want the original document", doc, ok)
	}
	if _, _, entries := s.Stats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
}

// TestEviction: the store stays bounded, evicts oldest first, and an
// evicted digest takes its request keys with it (no dangling index).
func TestEviction(t *testing.T) {
	s := New(Options{MaxEntries: 2})
	s.Put("r1", "d1", []byte("one"))
	s.Put("r2", "d2", []byte("two"))
	s.Put("r3", "d3", []byte("three"))

	if _, ok := s.Get("d1"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, _, ok := s.Lookup("r1"); ok {
		t.Fatal("request key for an evicted digest still resolves")
	}
	for i, want := range []string{"two", "three"} {
		key, digest := fmt.Sprintf("r%d", i+2), fmt.Sprintf("d%d", i+2)
		if _, doc, ok := s.Lookup(key); !ok || string(doc) != want {
			t.Errorf("Lookup(%s) = (%q, %v), want %q", key, doc, ok, want)
		}
		if _, ok := s.Get(digest); !ok {
			t.Errorf("Get(%s) missing", digest)
		}
	}
}

// TestCallerMutationIsolation: mutating a slice handed in or out must not
// corrupt the stored document.
func TestCallerMutationIsolation(t *testing.T) {
	s := New(Options{})
	in := []byte("stable")
	s.Put("r", "d", in)
	in[0] = 'X'
	out, _ := s.Get("d")
	out[0] = 'Y'
	if got, _ := s.Get("d"); string(got) != "stable" {
		t.Fatalf("stored doc mutated to %q", got)
	}
}

// TestConcurrentAccess is the race-detector workout for the store.
func TestConcurrentAccess(t *testing.T) {
	s := New(Options{MaxEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("r%d", (g+i)%16)
				digest := fmt.Sprintf("d%d", (g+i)%16)
				s.Put(key, digest, []byte(key))
				s.Lookup(key)
				s.Get(digest)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if _, _, entries := s.Stats(); entries > 8 {
		t.Fatalf("entries = %d, want <= MaxEntries (8)", entries)
	}
}
