package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/durable"
)

func TestLookupPutRoundTrip(t *testing.T) {
	s := New(Options{})
	if _, _, ok := s.Lookup("req1"); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put("req1", "d1", []byte(`{"a":1}`))

	digest, doc, ok := s.Lookup("req1")
	if !ok || digest != "d1" || string(doc) != `{"a":1}` {
		t.Fatalf("Lookup = (%q, %q, %v)", digest, doc, ok)
	}
	if got, ok := s.Get("d1"); !ok || string(got) != `{"a":1}` {
		t.Fatalf("Get(d1) = (%q, %v)", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get on absent digest reported ok")
	}

	hits, misses, entries := s.Stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (1, 1, 1)", hits, misses, entries)
	}
}

// TestSharedDigest: two request keys naming the same answer share one
// stored document, and the first document wins (content-addressed).
func TestSharedDigest(t *testing.T) {
	s := New(Options{})
	s.Put("req1", "d1", []byte("original"))
	s.Put("req2", "d1", []byte("impostor"))
	if _, doc, ok := s.Lookup("req2"); !ok || string(doc) != "original" {
		t.Fatalf("Lookup(req2) = (%q, %v), want the original document", doc, ok)
	}
	if _, _, entries := s.Stats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
}

// TestEviction: the store stays bounded, evicts oldest first, and an
// evicted digest takes its request keys with it (no dangling index).
func TestEviction(t *testing.T) {
	s := New(Options{MaxEntries: 2})
	s.Put("r1", "d1", []byte("one"))
	s.Put("r2", "d2", []byte("two"))
	s.Put("r3", "d3", []byte("three"))

	if _, ok := s.Get("d1"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, _, ok := s.Lookup("r1"); ok {
		t.Fatal("request key for an evicted digest still resolves")
	}
	for i, want := range []string{"two", "three"} {
		key, digest := fmt.Sprintf("r%d", i+2), fmt.Sprintf("d%d", i+2)
		if _, doc, ok := s.Lookup(key); !ok || string(doc) != want {
			t.Errorf("Lookup(%s) = (%q, %v), want %q", key, doc, ok, want)
		}
		if _, ok := s.Get(digest); !ok {
			t.Errorf("Get(%s) missing", digest)
		}
	}
}

// TestCallerMutationIsolation: mutating a slice handed in or out must not
// corrupt the stored document.
func TestCallerMutationIsolation(t *testing.T) {
	s := New(Options{})
	in := []byte("stable")
	s.Put("r", "d", in)
	in[0] = 'X'
	out, _ := s.Get("d")
	out[0] = 'Y'
	if got, _ := s.Get("d"); string(got) != "stable" {
		t.Fatalf("stored doc mutated to %q", got)
	}
}

// TestConcurrentAccess is the race-detector workout for the store.
func TestConcurrentAccess(t *testing.T) {
	s := New(Options{MaxEntries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("r%d", (g+i)%16)
				digest := fmt.Sprintf("d%d", (g+i)%16)
				s.Put(key, digest, []byte(key))
				s.Lookup(key)
				s.Get(digest)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if _, _, entries := s.Stats(); entries > 8 {
		t.Fatalf("entries = %d, want <= MaxEntries (8)", entries)
	}
}

// TestConcurrentEvictionChurnInvariants hammers the store with parallel
// Put/Lookup/Get over a key space far larger than the bound, so eviction
// churns constantly, and asserts the invariants that must survive any
// interleaving: the entry count never exceeds the bound, the hit/miss
// accounting exactly matches the Lookup outcomes the callers observed, a
// hit's document always agrees with its digest (the stored doc is the
// digest's doc, never a torn or foreign one), and a request key never
// dangles (a Lookup hit implies the digest resolves via Get too).
func TestConcurrentEvictionChurnInvariants(t *testing.T) {
	const (
		workers    = 8
		iters      = 300
		keySpace   = 64 // 8x the bound: every Put beyond 8 live digests evicts
		maxEntries = 8
	)
	s := New(Options{MaxEntries: maxEntries})
	var hits, misses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := (g*31 + i*7) % keySpace
				key, digest := fmt.Sprintf("r%d", n), fmt.Sprintf("d%d", n)
				doc := []byte(fmt.Sprintf("doc-for-%s", digest))
				s.Put(key, digest, doc)
				// The bound holds at every instant, not just at the end.
				if _, _, entries := s.Stats(); entries > maxEntries {
					t.Errorf("entries = %d > bound %d mid-churn", entries, maxEntries)
					return
				}
				d, got, ok := s.Lookup(key)
				if ok {
					hits.Add(1)
					if want := fmt.Sprintf("doc-for-%s", d); string(got) != want {
						t.Errorf("Lookup(%s) doc = %q, want %q (digest %s)", key, got, want, d)
						return
					}
					if _, ok := s.Get(d); !ok {
						t.Errorf("Lookup(%s) hit digest %s but Get missed: dangling index", key, d)
						return
					}
				} else {
					misses.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	gotHits, gotMisses, entries := s.Stats()
	if entries > maxEntries {
		t.Errorf("final entries = %d, want <= %d", entries, maxEntries)
	}
	if gotHits != hits.Load() || gotMisses != misses.Load() {
		t.Errorf("Stats hit/miss = %d/%d, callers observed %d/%d",
			gotHits, gotMisses, hits.Load(), misses.Load())
	}
	if total := gotHits + gotMisses; total != int64(workers*iters) {
		t.Errorf("hit+miss = %d, want %d lookups", total, workers*iters)
	}
}

// openDurable builds a durable store over dir, failing the test on error.
func openDurable(t *testing.T, dir string, opts Options) (*Store, durable.RecoveryInfo) {
	t.Helper()
	log, err := durable.Open(durable.Options{Dir: dir, Fsync: durable.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	opts.Log = log
	s, info, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, info
}

// TestDurableRoundTrip: entries put before an abrupt restart (the old log
// is abandoned, never closed) are served after recovery — digests, docs,
// and request keys all intact.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, info := openDurable(t, dir, Options{MaxEntries: 8})
	if info.Records != 0 {
		t.Fatalf("fresh dir replayed %d records", info.Records)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("r%d", i), fmt.Sprintf("d%d", i), []byte(fmt.Sprintf("doc%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// "Crash" and recover.
	s2, info := openDurable(t, dir, Options{MaxEntries: 8})
	if info.Records != 3 {
		t.Fatalf("replayed %d records, want 3", info.Records)
	}
	for i := 0; i < 3; i++ {
		d, doc, ok := s2.Lookup(fmt.Sprintf("r%d", i))
		if !ok || d != fmt.Sprintf("d%d", i) || string(doc) != fmt.Sprintf("doc%d", i) {
			t.Fatalf("recovered Lookup(r%d) = (%q, %q, %v)", i, d, doc, ok)
		}
	}
	// Recovery replays are inserts, not lookups: stats start clean except
	// for the lookups above.
	if hits, _, entries := s2.Stats(); hits != 3 || entries != 3 {
		t.Fatalf("recovered stats = hits %d entries %d", hits, entries)
	}
}

// TestDurableEvictionBoundOnReplay: replay re-applies history through the
// bounded insert path, so a recovered store still respects MaxEntries.
func TestDurableEvictionBoundOnReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurable(t, dir, Options{MaxEntries: 2})
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("r%d", i), fmt.Sprintf("d%d", i), []byte("x"))
	}
	s2, _ := openDurable(t, dir, Options{MaxEntries: 2})
	if _, _, entries := s2.Stats(); entries != 2 {
		t.Fatalf("recovered entries = %d, want 2", entries)
	}
	if _, _, ok := s2.Lookup("r4"); !ok {
		t.Fatal("newest entry lost on replay")
	}
	if _, _, ok := s2.Lookup("r0"); ok {
		t.Fatal("evicted entry resurrected on replay")
	}
}

// TestDurableSnapshotCompaction: crossing SnapshotEvery compacts the log;
// recovery then comes from the snapshot plus the record tail, and the
// directory does not accumulate history.
func TestDurableSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurable(t, dir, Options{MaxEntries: 16, SnapshotEvery: 4})
	for i := 0; i < 10; i++ { // two snapshots at puts 4 and 8, tail of 2
		s.Put(fmt.Sprintf("r%d", i), fmt.Sprintf("d%d", i), []byte(fmt.Sprintf("doc%d", i)))
	}
	s2, info := openDurable(t, dir, Options{MaxEntries: 16, SnapshotEvery: 4})
	if info.SnapshotSeq == 0 {
		t.Fatal("recovery used no snapshot")
	}
	if info.Records != 2 {
		t.Fatalf("replayed %d tail records, want 2", info.Records)
	}
	for i := 0; i < 10; i++ {
		if _, _, ok := s2.Lookup(fmt.Sprintf("r%d", i)); !ok {
			t.Fatalf("entry r%d lost across snapshot recovery", i)
		}
	}
}

// TestDurableTornTail: a torn final WAL record (cut mid-byte) loses only
// that record; everything before it recovers, and the store starts.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurable(t, dir, Options{MaxEntries: 8})
	s.Put("r0", "d0", []byte("keep"))
	s.Put("r1", "d1", []byte("torn"))

	// Tear the last record.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") {
			p := filepath.Join(dir, e.Name())
			st, _ := os.Stat(p)
			if st.Size() > 4 {
				if err := os.Truncate(p, st.Size()-4); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	s2, info := openDurable(t, dir, Options{MaxEntries: 8})
	if !info.Truncated {
		t.Fatalf("info = %+v, want truncation", info)
	}
	if _, _, ok := s2.Lookup("r0"); !ok {
		t.Fatal("intact entry r0 lost to torn-tail recovery")
	}
	if _, _, ok := s2.Lookup("r1"); ok {
		t.Fatal("torn entry r1 survived (checksum should have failed)")
	}
}
