// Package resultstore is rtrbenchd's content-addressed result cache.
//
// A finished benchmark run is stored under its golden-digest sum — the
// SHA-256 of the run's canonical correctness digest (operation counts and
// final-state summaries, never timings; see internal/golden). Because the
// suite's kernels are deterministic functions of their normalized options,
// a request-key index on top of the content store lets a repeat submission
// resolve to the stored document without re-executing anything: the
// request key names the computation, the digest names the answer, and the
// two-level map keeps both addressable (GET /v1/results/{digest} serves by
// content, job submission resolves by request).
package resultstore

import "sync"

// Store is a bounded, goroutine-safe content-addressed store. Construct
// with New.
type Store struct {
	mu sync.Mutex
	// byDigest holds the stored documents by content address.
	byDigest map[string][]byte
	// byReq maps canonical request keys onto content addresses. Several
	// requests may share one digest (distinct computations can agree on
	// the answer); an evicted digest drops its request keys with it.
	byReq map[string]string
	// order is digest insertion order, oldest first, for eviction.
	order []string
	max   int

	hits, misses int64
}

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the number of stored documents; insertion beyond
	// it evicts the oldest. <= 0 means 256.
	MaxEntries int
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 256
	}
	return &Store{
		byDigest: map[string][]byte{},
		byReq:    map[string]string{},
		max:      opts.MaxEntries,
	}
}

// Lookup resolves a canonical request key to its stored result, counting
// the outcome in the hit/miss statistics.
func (s *Store) Lookup(reqKey string) (digest string, doc []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest, ok = s.byReq[reqKey]
	if ok {
		doc, ok = s.byDigest[digest]
	}
	if !ok {
		s.misses++
		return "", nil, false
	}
	s.hits++
	return digest, clone(doc), true
}

// Get fetches a stored document by content address. Serving by digest does
// not touch the hit/miss statistics — those measure request-level caching.
func (s *Store) Get(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.byDigest[digest]
	if !ok {
		return nil, false
	}
	return clone(doc), true
}

// Put stores doc under digest and indexes reqKey to it, evicting the
// oldest entries beyond the store's bound. A digest already present keeps
// its original document (content-addressed: same digest, same answer) but
// still gains the new request key.
func (s *Store) Put(reqKey, digest string, doc []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.byDigest[digest]; !exists {
		s.byDigest[digest] = clone(doc)
		s.order = append(s.order, digest)
		for len(s.order) > s.max {
			s.evictOldestLocked()
		}
	}
	// The eviction above never removes the digest just inserted (it is the
	// newest), so the index below always points at a live document.
	s.byReq[reqKey] = digest
}

// evictOldestLocked drops the oldest digest and every request key bound to
// it. Callers hold s.mu.
func (s *Store) evictOldestLocked() {
	oldest := s.order[0]
	s.order = s.order[1:]
	delete(s.byDigest, oldest)
	for k, d := range s.byReq {
		if d == oldest {
			delete(s.byReq, k)
		}
	}
}

// Stats returns the request-level cache statistics and the current entry
// count.
func (s *Store) Stats() (hits, misses int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, len(s.byDigest)
}

// clone keeps stored documents isolated from caller mutation in both
// directions.
func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
