// Package resultstore is rtrbenchd's content-addressed result cache.
//
// A finished benchmark run is stored under its golden-digest sum — the
// SHA-256 of the run's canonical correctness digest (operation counts and
// final-state summaries, never timings; see internal/golden). Because the
// suite's kernels are deterministic functions of their normalized options,
// a request-key index on top of the content store lets a repeat submission
// resolve to the stored document without re-executing anything: the
// request key names the computation, the digest names the answer, and the
// two-level map keeps both addressable (GET /v1/results/{digest} serves by
// content, job submission resolves by request).
//
// The store is optionally durable: opened over an internal/durable
// write-ahead log, every Put is appended as a checksummed record and the
// full state is periodically snapshotted and compacted, so a kill -9
// restart replays the cache instead of starting cold. Eviction is not
// logged — replay re-applies Puts in order through the same bounded
// insert path, so the recovered store converges to the same bounded
// contents.
package resultstore

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/durable"
)

// Store is a bounded, goroutine-safe content-addressed store. Construct
// with New (in-memory) or Open (durable).
type Store struct {
	mu sync.Mutex
	// byDigest holds the stored documents by content address.
	byDigest map[string][]byte
	// byReq maps canonical request keys onto content addresses. Several
	// requests may share one digest (distinct computations can agree on
	// the answer); an evicted digest drops its request keys with it.
	byReq map[string]string
	// order is digest insertion order, oldest first, for eviction.
	order []string
	max   int

	// wal is the durability layer; nil for an in-memory store. putsSince
	// counts appends since the last snapshot for the compaction cadence.
	wal           *durable.Log
	snapshotEvery int
	putsSince     int

	hits, misses int64
}

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the number of stored documents; insertion beyond
	// it evicts the oldest. <= 0 means 256.
	MaxEntries int
	// Log, when non-nil, makes the store durable: Open replays it and Put
	// appends to it. The caller keeps ownership of the log's lifecycle
	// (Close); the log must be freshly opened and not yet recovered.
	Log *durable.Log
	// SnapshotEvery compacts the log (full-state snapshot + segment
	// deletion) every this many Puts. <= 0 means 64.
	SnapshotEvery int
}

// New builds an empty in-memory store (Options.Log is ignored).
func New(opts Options) *Store {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 256
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 64
	}
	return &Store{
		byDigest:      map[string][]byte{},
		byReq:         map[string]string{},
		max:           opts.MaxEntries,
		snapshotEvery: opts.SnapshotEvery,
	}
}

// walRecord is one logged Put.
type walRecord struct {
	ReqKey string `json:"req_key"`
	Digest string `json:"digest"`
	Doc    []byte `json:"doc"`
}

// walSnapshot is the full-state blob: entries in insertion order with
// their request keys, so replay rebuilds both maps and the eviction order.
type walSnapshot struct {
	Entries []walEntry `json:"entries"`
}

type walEntry struct {
	Digest string   `json:"digest"`
	Doc    []byte   `json:"doc"`
	Reqs   []string `json:"reqs,omitempty"`
}

// Open builds a durable store over opts.Log: it recovers the log
// (snapshot plus record replay, torn tails truncated) into the store and
// wires every subsequent Put through it. The returned RecoveryInfo
// reports what survived.
func Open(opts Options) (*Store, durable.RecoveryInfo, error) {
	s := New(opts)
	if opts.Log == nil {
		return s, durable.RecoveryInfo{}, fmt.Errorf("resultstore: Open requires Options.Log (use New for in-memory)")
	}
	info, err := opts.Log.Recover(
		func(state []byte) error {
			var snap walSnapshot
			if err := json.Unmarshal(state, &snap); err != nil {
				return err
			}
			for _, e := range snap.Entries {
				if len(e.Reqs) == 0 {
					s.putLocked("", e.Digest, e.Doc)
					continue
				}
				for _, req := range e.Reqs {
					s.putLocked(req, e.Digest, e.Doc)
				}
			}
			return nil
		},
		func(rec []byte) error {
			var r walRecord
			if err := json.Unmarshal(rec, &r); err != nil {
				return err
			}
			s.putLocked(r.ReqKey, r.Digest, r.Doc)
			return nil
		},
	)
	if err != nil {
		return nil, info, fmt.Errorf("resultstore: %w", err)
	}
	// Only attach the WAL after replay: putLocked during recovery must not
	// re-append its own history.
	s.wal = opts.Log
	return s, info, nil
}

// Lookup resolves a canonical request key to its stored result, counting
// the outcome in the hit/miss statistics.
func (s *Store) Lookup(reqKey string) (digest string, doc []byte, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	digest, ok = s.byReq[reqKey]
	if ok {
		doc, ok = s.byDigest[digest]
	}
	if !ok {
		s.misses++
		return "", nil, false
	}
	s.hits++
	return digest, clone(doc), true
}

// Get fetches a stored document by content address. Serving by digest does
// not touch the hit/miss statistics — those measure request-level caching.
func (s *Store) Get(digest string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc, ok := s.byDigest[digest]
	if !ok {
		return nil, false
	}
	return clone(doc), true
}

// Put stores doc under digest and indexes reqKey to it, evicting the
// oldest entries beyond the store's bound. A digest already present keeps
// its original document (content-addressed: same digest, same answer) but
// still gains the new request key. On a durable store the Put is appended
// to the write-ahead log before it is acknowledged, and every
// SnapshotEvery puts the log is compacted behind a full-state snapshot.
// WAL failures are returned but do not block the in-memory insert: a
// degraded disk degrades durability, not service.
func (s *Store) Put(reqKey, digest string, doc []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(reqKey, digest, doc)
	if s.wal == nil {
		return nil
	}
	rec, err := json.Marshal(walRecord{ReqKey: reqKey, Digest: digest, Doc: doc})
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := s.wal.Append(rec); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.putsSince++
	if s.putsSince >= s.snapshotEvery {
		if err := s.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// putLocked is the bounded insert shared by Put and replay. Callers hold
// s.mu (or hold the only reference, during Open).
func (s *Store) putLocked(reqKey, digest string, doc []byte) {
	if _, exists := s.byDigest[digest]; !exists {
		s.byDigest[digest] = clone(doc)
		s.order = append(s.order, digest)
		for len(s.order) > s.max {
			s.evictOldestLocked()
		}
	}
	// The eviction above never removes the digest just inserted (it is the
	// newest), so the index below always points at a live document.
	if reqKey != "" {
		s.byReq[reqKey] = digest
	}
}

// Snapshot forces a compaction of the durable log (no-op in-memory).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	return s.snapshotLocked()
}

// snapshotLocked serializes the full state into the WAL's snapshot slot
// and lets it compact history. Callers hold s.mu with s.wal non-nil.
func (s *Store) snapshotLocked() error {
	snap := walSnapshot{Entries: make([]walEntry, 0, len(s.order))}
	reqs := map[string][]string{}
	for req, d := range s.byReq {
		reqs[d] = append(reqs[d], req)
	}
	for _, d := range s.order {
		snap.Entries = append(snap.Entries, walEntry{Digest: d, Doc: s.byDigest[d], Reqs: reqs[d]})
	}
	state, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := s.wal.Snapshot(state); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	s.putsSince = 0
	return nil
}

// evictOldestLocked drops the oldest digest and every request key bound to
// it. Callers hold s.mu.
func (s *Store) evictOldestLocked() {
	oldest := s.order[0]
	s.order = s.order[1:]
	delete(s.byDigest, oldest)
	for k, d := range s.byReq {
		if d == oldest {
			delete(s.byReq, k)
		}
	}
}

// Stats returns the request-level cache statistics and the current entry
// count.
func (s *Store) Stats() (hits, misses int64, entries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, len(s.byDigest)
}

// clone keeps stored documents isolated from caller mutation in both
// directions.
func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
