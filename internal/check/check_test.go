package check

import (
	"math"
	"strings"
	"testing"
)

func TestCleanConfigPasses(t *testing.T) {
	f := New("k")
	f.Positive("Dt", 0.1)
	f.NonNegative("Sigma", 0)
	f.Finite("V", -3)
	f.Prob("Rate", 1)
	f.PositiveInt("Steps", 5)
	f.NonNegativeInt("Extra", 0)
	if err := f.Err(); err != nil {
		t.Fatalf("clean config produced error: %v", err)
	}
}

func TestViolationsAccumulate(t *testing.T) {
	f := New("ekfslam")
	f.Positive("Dt", 0)
	f.Positive("Steps", math.Inf(1))
	f.NonNegative("Sigma", -1)
	f.Finite("V", math.NaN())
	f.Prob("Rate", 1.5)
	f.PositiveInt("N", -2)
	err := f.Err()
	if err == nil {
		t.Fatal("six violations produced nil error")
	}
	msg := err.Error()
	for _, want := range []string{"ekfslam: Dt", "Steps", "Sigma", "V must be finite", "Rate", "N must be positive"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
}
