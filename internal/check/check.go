// Package check provides the field-level validation helpers behind the
// kernels' Config.Validate methods. A Fields accumulates every violation it
// sees — dimension, bound, and finiteness checks — so a malformed config
// reports all of its problems at once instead of failing one field at a
// time.
package check

import (
	"errors"
	"fmt"
	"math"
)

// Fields accumulates validation errors for one kernel's config. The zero
// value is unusable; construct with New so messages carry the kernel name.
type Fields struct {
	kernel string
	errs   []error
}

// New returns an empty accumulator whose messages are prefixed with the
// kernel name.
func New(kernel string) *Fields { return &Fields{kernel: kernel} }

// Addf records a formatted violation.
func (f *Fields) Addf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Errorf(f.kernel+": "+format, args...))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Finite requires v to be neither NaN nor ±Inf.
func (f *Fields) Finite(name string, v float64) {
	if !finite(v) {
		f.Addf("%s must be finite (got %v)", name, v)
	}
}

// Positive requires v > 0 and finite.
func (f *Fields) Positive(name string, v float64) {
	if !finite(v) || v <= 0 {
		f.Addf("%s must be positive and finite (got %v)", name, v)
	}
}

// NonNegative requires v >= 0 and finite.
func (f *Fields) NonNegative(name string, v float64) {
	if !finite(v) || v < 0 {
		f.Addf("%s must be non-negative and finite (got %v)", name, v)
	}
}

// Prob requires v in [0, 1].
func (f *Fields) Prob(name string, v float64) {
	if !finite(v) || v < 0 || v > 1 {
		f.Addf("%s must be a probability in [0, 1] (got %v)", name, v)
	}
}

// PositiveInt requires v > 0.
func (f *Fields) PositiveInt(name string, v int) {
	if v <= 0 {
		f.Addf("%s must be positive (got %d)", name, v)
	}
}

// NonNegativeInt requires v >= 0.
func (f *Fields) NonNegativeInt(name string, v int) {
	if v < 0 {
		f.Addf("%s must be non-negative (got %d)", name, v)
	}
}

// Err returns all accumulated violations joined, or nil if none fired.
func (f *Fields) Err() error { return errors.Join(f.errs...) }
