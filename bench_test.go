// Benchmark harness regenerating the paper's evaluation (see DESIGN.md §3
// for the experiment index). One benchmark (or benchmark family) exists per
// table and figure:
//
//	BenchmarkTable1_*       Table I — per-kernel execution; the accompanying
//	                        phase fractions print via -v through b.ReportMetric.
//	BenchmarkFig21/*        Fig. 21 — optimized vs P-Rob/C-Rob-style A* across
//	                        map scale factors.
//	BenchmarkMovtarSize/*   §V.6 — heuristic share vs environment size.
//	BenchmarkRRTFamily/*    §V.8-10 — RRT vs RRT* vs RRT-PP time and cost.
//	BenchmarkSymDomains/*   §V.11-12 — the two symbolic planning domains.
//	BenchmarkCEMvsBO/*      §V.15-16 — learning-kernel compute comparison.
//	BenchmarkAblation*      design-choice ablations called out in DESIGN.md.
//
// Run everything:  go test -bench=. -benchmem .
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/arm"
	"repro/internal/core/ekfslam"
	"repro/internal/core/movtar"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/core/prm"
	"repro/internal/core/rrt"
	"repro/internal/core/srec"
	"repro/internal/core/sym"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/kdtree"
	"repro/internal/maps"
	"repro/internal/naive"
	"repro/internal/pq"
	"repro/internal/profile"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/sensor"
	"repro/internal/symbolic"
	"repro/rtrbench"
)

// --- Table I: one benchmark per kernel. The dominant-phase fraction is
// attached as a custom metric so `go test -bench Table1` reproduces the
// characterization columns, not just wall time.

func benchKernel(b *testing.B, name string) {
	b.Helper()
	var lastDominant float64
	for i := 0; i < b.N; i++ {
		res, err := rtrbench.Run(name, rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		lastDominant = res.Fraction(res.Dominant())
	}
	b.ReportMetric(100*lastDominant, "dominant-%")
}

func BenchmarkTable1_01_pfl(b *testing.B)     { benchKernel(b, "pfl") }
func BenchmarkTable1_02_ekfslam(b *testing.B) { benchKernel(b, "ekfslam") }
func BenchmarkTable1_03_srec(b *testing.B)    { benchKernel(b, "srec") }
func BenchmarkTable1_04_pp2d(b *testing.B)    { benchKernel(b, "pp2d") }
func BenchmarkTable1_05_pp3d(b *testing.B)    { benchKernel(b, "pp3d") }
func BenchmarkTable1_06_movtar(b *testing.B)  { benchKernel(b, "movtar") }
func BenchmarkTable1_07_prm(b *testing.B)     { benchKernel(b, "prm") }
func BenchmarkTable1_08_rrt(b *testing.B)     { benchKernel(b, "rrt") }
func BenchmarkTable1_09_rrtstar(b *testing.B) { benchKernel(b, "rrtstar") }
func BenchmarkTable1_10_rrtpp(b *testing.B)   { benchKernel(b, "rrtpp") }
func BenchmarkTable1_11_symblkw(b *testing.B) { benchKernel(b, "sym-blkw") }
func BenchmarkTable1_12_symfext(b *testing.B) { benchKernel(b, "sym-fext") }
func BenchmarkTable1_13_dmp(b *testing.B)     { benchKernel(b, "dmp") }
func BenchmarkTable1_14_mpc(b *testing.B)     { benchKernel(b, "mpc") }
func BenchmarkTable1_15_cem(b *testing.B)     { benchKernel(b, "cem") }
func BenchmarkTable1_16_bo(b *testing.B)      { benchKernel(b, "bo") }

// --- Fig. 21: the library comparison. Three implementations of the same
// point-robot A* on the PythonRobotics demo map, scaled.

func BenchmarkFig21(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		g := maps.PRobMap().Scale(scale)
		sx, sy, gx, gy := maps.PRobStartGoal(scale)

		b.Run(fmt.Sprintf("rtrbench/x%d", scale), func(b *testing.B) {
			cfg := pp2d.DefaultConfig()
			cfg.Map = g
			cfg.CarLength = g.Resolution * 0.5
			cfg.CarWidth = g.Resolution * 0.5
			cfg.StartX, cfg.StartY, cfg.GoalX, cfg.GoalY = sx, sy, gx, gy
			for i := 0; i < b.N; i++ {
				if _, err := pp2d.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("prob-style/x%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := naive.Interp(g, sx, sy, gx, gy); !res.Found {
					b.Fatal("no path")
				}
			}
		})
		b.Run(fmt.Sprintf("crob-style/x%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := naive.Copy(g, sx, sy, gx, gy); !res.Found {
					b.Fatal("no path")
				}
			}
		})
	}
}

// --- §V.6: movtar across environment sizes; the heuristic share is
// attached as a metric so the crossover direction is visible in the output.

func BenchmarkMovtarSize(b *testing.B) {
	for _, size := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("size%d", size), func(b *testing.B) {
			var heurPct float64
			for i := 0; i < b.N; i++ {
				cfg := movtar.DefaultConfig()
				cfg.Size = size
				p := profile.New()
				if _, err := movtar.Run(context.Background(), cfg, p); err != nil {
					b.Fatal(err)
				}
				heurPct = 100 * p.Snapshot().Fraction("heuristic")
			}
			b.ReportMetric(heurPct, "heuristic-%")
		})
	}
}

// --- §V.8-10: the RRT family on Map-C. Path cost is attached as a metric;
// the per-op times reproduce the paper's slowdown factor.

func BenchmarkRRTFamily(b *testing.B) {
	variants := []struct {
		name string
		run  func(context.Context, rrt.Config, *profile.Profile) (rrt.Result, error)
	}{
		{"rrt", rrt.Run},
		{"rrtpp", rrt.RunPP},
		{"rrtstar", rrt.RunStar},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var cost float64
			n := 0
			for i := 0; i < b.N; i++ {
				cfg := rrt.DefaultConfig()
				cfg.MaxSamples = 10000
				cfg.Seed = int64(i%5) + 1
				res, err := v.run(context.Background(), cfg, profile.Disabled())
				if err != nil {
					continue // some seeds exhaust the budget; skip
				}
				cost += res.PathCost
				n++
			}
			if n > 0 {
				b.ReportMetric(cost/float64(n), "pathcost")
			}
		})
	}
}

// --- §V.11-12: the symbolic planner on both domains, with the branching
// factor (the paper's parallelism measure) as a metric.

func BenchmarkSymDomains(b *testing.B) {
	for _, domain := range []sym.Domain{sym.BlocksWorld, sym.Firefighter} {
		b.Run(string(domain), func(b *testing.B) {
			var branching float64
			for i := 0; i < b.N; i++ {
				res, err := sym.Run(context.Background(), sym.DefaultConfig(domain), profile.Disabled())
				if err != nil {
					b.Fatal(err)
				}
				branching = res.Stats.AvgBranching()
			}
			b.ReportMetric(branching, "branching")
		})
	}
}

// --- §V.15-16: cem vs bo learning compute (Figs. 18-19 come from the
// reward series; here the per-op time ratio reproduces the "computationally
// more intensive" comparison).

func BenchmarkCEMvsBO(b *testing.B) {
	b.Run("cem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtrbench.Run("cem", rtrbench.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtrbench.Run("bo", rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §4.6): the data-structure choices the paper's
// bottleneck analysis rests on.

// BenchmarkAblationNN compares the k-d tree against the brute-force scan
// for the nearest-neighbor workload of the sampling planners (5-D configs).
func BenchmarkAblationNN(b *testing.B) {
	r := rng.New(1)
	const n = 5000
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, 5)
		for d := range p {
			p[d] = r.Uniform(-3, 3)
		}
		points[i] = p
	}
	queries := make([][]float64, 256)
	for i := range queries {
		p := make([]float64, 5)
		for d := range p {
			p[d] = r.Uniform(-3, 3)
		}
		queries[i] = p
	}

	b.Run("kdtree", func(b *testing.B) {
		t := kdtree.New(5, nil)
		for i, p := range points {
			t.Insert(p, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Nearest(queries[i%len(queries)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		l := kdtree.NewLinear(5, nil)
		for i, p := range points {
			l.Insert(p, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Nearest(queries[i%len(queries)])
		}
	})
}

// BenchmarkAblationHeap compares the indexed heap's decrease-key against
// the push-duplicates strategy on a grid Dijkstra workload.
func BenchmarkAblationHeap(b *testing.B) {
	g := maps.CityMap(128, 128, 1)
	sp := &search.Grid2DSpace{G: g}
	sx, sy := maps.FreeCellNear(g, 8, 8)
	gx, gy := maps.FreeCellNear(g, 120, 120)

	b.Run("indexed-decrease-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.Solve(search.Problem{
				Space: sp, Start: sp.ID(sx, sy), Goal: sp.ID(gx, gy),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("push-duplicates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !dijkstraPushDup(g, sx, sy, gx, gy) {
				b.Fatal("no path")
			}
		}
	})
}

// dijkstraPushDup is the ablation baseline: a Dijkstra that re-pushes nodes
// instead of decreasing keys.
func dijkstraPushDup(g *grid.Grid2D, sx, sy, gx, gy int) bool {
	w := g.W
	dist := make([]float64, g.W*g.H)
	for i := range dist {
		dist[i] = 1e18
	}
	h := pq.NewHeap[int](1024)
	start, goal := sy*w+sx, gy*w+gx
	dist[start] = 0
	h.Push(start, 0)
	sp := &search.Grid2DSpace{G: g}
	for h.Len() > 0 {
		id, d := h.Pop()
		if d > dist[id] {
			continue
		}
		if id == goal {
			return true
		}
		sp.Neighbors(id, func(to int, cost float64) {
			if nd := d + cost; nd < dist[to] {
				dist[to] = nd
				h.Push(to, nd)
			}
		})
	}
	return false
}

// BenchmarkAblationRaycastBeams measures how pfl's ray-casting cost scales
// with beam count — the knob the paper's per-kernel CLI exposes.
func BenchmarkAblationRaycastBeams(b *testing.B) {
	g := maps.IndoorMap(192, 96, 1)
	g.Resolution = 0.25
	for _, beams := range []int{9, 37, 73} {
		b.Run(fmt.Sprintf("beams%d", beams), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for bb := 0; bb < beams; bb++ {
					theta := -2.35 + 4.7*float64(bb)/float64(beams-1)
					g.Raycast(24, 12, theta, 25)
				}
			}
		})
	}
}

// BenchmarkAblationFootprint measures footprint collision checking against
// the inflation shortcut (inflate once, then point checks) — the trade the
// paper's collision-acceleration citations attack in hardware.
func BenchmarkAblationFootprint(b *testing.B) {
	g := pp2d.DefaultMap(256, 1)
	b.Run("footprint-per-check", func(b *testing.B) {
		cfg := pp2d.DefaultConfig()
		cfg.Map = g
		for i := 0; i < b.N; i++ {
			if _, err := pp2d.Run(context.Background(), cfg, profile.Disabled()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inflate-then-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Inflate by the car's half-width (1.8 m / 2 at 0.5 m cells).
			// This under-approximates the true footprint (the length is
			// unaccounted for), which is exactly the fidelity loss this
			// ablation trades for speed.
			inflated := g.Inflate(2)
			sp := &search.Grid2DSpace{G: inflated}
			sx, sy := maps.FreeCellNear(inflated, 16, 16)
			gx, gy := maps.FreeCellNear(inflated, 240, 240)
			_, err := search.Solve(search.Problem{
				Space: sp, Start: sp.ID(sx, sy), Goal: sp.ID(gx, gy),
				H: sp.OctileHeuristic(gx, gy),
			})
			if err != nil {
				b.Skip("inflation disconnected this map")
			}
		}
	})
}

// BenchmarkAblationArmDoF measures how RRT cost scales with the arm's
// degrees of freedom (the dimensionality argument of §V.7).
func BenchmarkAblationArmDoF(b *testing.B) {
	for _, dof := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("dof%d", dof), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := rrt.DefaultConfig()
				cfg.Arm = armWithDoF(dof)
				cfg.Workspace = arm.MapC()
				cfg.Start = arm.DefaultStart(dof)
				cfg.Goal = arm.DefaultGoal(dof)
				cfg.Seed = int64(i%3) + 1
				rrt.Run(context.Background(), cfg, profile.Disabled()) //nolint:errcheck // budget exhaustion is data here
			}
		})
	}
}

// BenchmarkAblationEKFLandmarks measures how the EKF's matrix-dominated
// update scales with landmark count — the state dimension grows as 3+2N,
// making the covariance products O(N²)-O(N³) (the paper's footnote: matrix
// sizes are "proportionate to the number of different measurement types").
func BenchmarkAblationEKFLandmarks(b *testing.B) {
	for _, nl := range []int{6, 12, 24} {
		b.Run(fmt.Sprintf("landmarks%d", nl), func(b *testing.B) {
			lms := make([]sensor.Landmark, nl)
			r := rng.New(1)
			for i := range lms {
				lms[i] = sensor.Landmark{ID: i, P: geom.Vec2{X: r.Uniform(-12, 14), Y: r.Uniform(-6, 18)}}
			}
			cfg := ekfslam.DefaultConfig()
			cfg.Landmarks = lms
			cfg.Steps = 100
			for i := 0; i < b.N; i++ {
				if _, err := ekfslam.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPFLWorkers measures the ray-casting fan-out speedup —
// the "fine-grained parallelism" the paper calls a perfect fit for
// hardware acceleration.
func BenchmarkAblationPFLWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			cfg := pfl.DefaultConfig()
			cfg.Particles = 1000
			cfg.Steps = 10
			cfg.InitFactor = 1
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := pfl.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSensorModel compares the beam (ray-casting) sensor model
// against the likelihood-field model that removes the map traversal — the
// software equivalent of the ray-casting accelerator the paper cites.
func BenchmarkAblationSensorModel(b *testing.B) {
	for _, lf := range []bool{false, true} {
		name := "beam-raycast"
		if lf {
			name = "likelihood-field"
		}
		b.Run(name, func(b *testing.B) {
			cfg := pfl.DefaultConfig()
			cfg.Particles = 500
			cfg.Steps = 10
			cfg.InitFactor = 1
			cfg.LikelihoodField = lf
			for i := 0; i < b.N; i++ {
				if _, err := pfl.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLazyPRM compares eager and lazy roadmap construction
// (Lazy PRM defers edge collision checks to query time).
func BenchmarkAblationLazyPRM(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := prm.DefaultConfig()
				cfg.Samples = 1000
				cfg.Lazy = lazy
				cfg.Seed = int64(i%3) + 1
				if _, err := prm.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSymHeuristic compares the goal-count and additive
// heuristics on random blocks-world instances.
func BenchmarkAblationSymHeuristic(b *testing.B) {
	probs := make([]*symbolic.Problem, 5)
	for i := range probs {
		probs[i] = symbolic.BlocksWorldRandom(8, int64(i)+1)
	}
	for _, h := range []struct {
		name string
		kind symbolic.HeuristicKind
	}{{"goalcount", symbolic.GoalCount}, {"hadd", symbolic.Additive}} {
		b.Run(h.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if symbolic.SolveWith(probs[i%len(probs)], symbolic.SolveOptions{Heuristic: h.kind}) == nil {
					b.Fatal("no plan")
				}
			}
		})
	}
}

// BenchmarkAblationICPMethod compares point-to-point and point-to-plane
// ICP on the same scans.
func BenchmarkAblationICPMethod(b *testing.B) {
	for _, m := range []srec.Method{srec.PointToPoint, srec.PointToPlane} {
		b.Run(string(m), func(b *testing.B) {
			cfg := srec.DefaultConfig()
			cfg.Cols, cfg.Rows = 60, 45
			cfg.Method = m
			for i := 0; i < b.N; i++ {
				if _, err := srec.Run(context.Background(), cfg, profile.Disabled()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRRTConnect compares plain RRT against the bidirectional
// RRT-Connect extension.
func BenchmarkAblationRRTConnect(b *testing.B) {
	for _, v := range []struct {
		name string
		run  func(context.Context, rrt.Config, *profile.Profile) (rrt.Result, error)
	}{{"rrt", rrt.Run}, {"rrtconnect", rrt.RunConnect}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := rrt.DefaultConfig()
				cfg.Seed = int64(i%5) + 1
				v.run(context.Background(), cfg, profile.Disabled()) //nolint:errcheck // failures are data
			}
		})
	}
}

func armWithDoF(dof int) *arm.Arm {
	links := make([]float64, dof)
	for i := range links {
		links[i] = 0.26 / float64(dof)
	}
	return arm.New(geom.Vec2{}, links...)
}

// BenchmarkProfileDisabledOverhead measures the disabled-Profile fast path
// — the paper's "virtually zero effect on performance" hook contract. The
// benchmark body exercises every hot-path entry point (ROI, nested phases,
// counters, steps) and asserts the whole sequence stays allocation-free;
// a regression here would tax every uninstrumented kernel run.
func BenchmarkProfileDisabledOverhead(b *testing.B) {
	p := profile.Disabled()
	fn := func() {} // pre-built so Span's closure isn't counted
	if allocs := testing.AllocsPerRun(100, func() {
		p.BeginROI()
		p.Begin("outer")
		p.Begin("inner")
		p.Count("ops", 1)
		p.StepDone()
		p.End()
		p.End()
		p.Span("span", fn)
		p.EndROI()
	}); allocs != 0 {
		b.Fatalf("disabled profile allocates: %v allocs/op", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.BeginROI()
		p.Begin("outer")
		p.Begin("inner")
		p.Count("ops", 1)
		p.StepDone()
		p.End()
		p.End()
		p.Span("span", fn)
		p.EndROI()
	}
}

// BenchmarkWorkers measures the intra-kernel parallelism curve of the
// kernels honoring Options.Workers. w0 is each kernel's legacy serial
// algorithm; w1/w2/w4/w8 run the deterministic parallel algorithm with an
// increasing goroutine budget (the results are identical across w1-w8 by
// contract, so the per-op times isolate pure scheduling effect). On a
// single-core host the w1-w8 curve is flat and the numbers record the
// mechanism's overhead rather than a speedup; compare snapshots from a
// multi-core host for the scaling picture.
func BenchmarkWorkers(b *testing.B) {
	for _, kernel := range []string{"pfl", "ekfslam", "prm", "rrt", "rrtstar", "rrtpp"} {
		for _, w := range []int{0, 1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/w%d", kernel, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := rtrbench.Run(kernel, rtrbench.Options{
						Size: rtrbench.SizeSmall, Seed: 1, Workers: w,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSuite runs the full 16-kernel SizeSmall sweep through the
// parallel execution engine, sequentially and on all cores. On a >= 4-core
// machine the parallel run should come in at well under 1/1.5 of the
// sequential wall-clock (compare the per-op times of the two sub-benches).
func BenchmarkSuite(b *testing.B) {
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rtrbench.Suite(context.Background(), rtrbench.SuiteOptions{
					Options:  rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1},
					Parallel: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.FirstError(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
