#!/bin/sh
# ci.sh — the suite's verification gate. Runs formatting, vet, build, and
# the test suite with the race detector (the profile.Sharded tests are the
# concurrency-sensitive part). Usage: scripts/ci.sh  (or: make ci)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
if go test -race -count=1 ./... ; then
    :
else
    status=$?
    echo "go test -race failed" >&2
    exit $status
fi

echo "== suite smoke sweep (parallel, race detector)"
# The full 16-kernel SizeSmall sweep through the parallel engine, with a
# per-run timeout so a hung kernel fails the gate instead of wedging it.
go run -race ./cmd/rtrbench suite --size small --parallel 4 --timeout 120s

echo "== golden verify (digest diff, race detector)"
# Correctness gate: every kernel's result digest (operation counts and
# final-state summaries, never timings) must match the goldens checked in
# under rtrbench/testdata/golden/. Run once serial and once parallel — the
# digests must be bit-identical either way; -metamorphic on the parallel run
# additionally proves trial-order and profiling independence. On intentional
# result changes, regenerate with `make golden-update` and review the diff.
go run -race ./cmd/rtrbench verify -parallel 1
go run -race ./cmd/rtrbench verify -parallel 8 -metamorphic

echo "== chaos sweep (injected faults, race detector)"
# The same sweep under deterministic fault injection: sensor dropouts and
# NaN corruption, stalls, and injected panics. The gate checks the process
# survives — panics must surface as structured per-kernel errors, not kill
# the sweep — and that panic recovery is race-clean.
go run -race ./cmd/rtrbench suite --size small -chaos -trials 2 -parallel 4 --timeout 120s

echo "== fuzz smoke"
# Short native-fuzz bursts over the untrusted-input surfaces (one -fuzz
# target per invocation is a Go toolchain restriction). The checked-in
# corpora under testdata/fuzz/ already ran as regular tests above. The
# kdtree differential target runs under the race detector: its oracle
# comparison is exactly the kind of traversal code where a data race in the
# shared candidate heap would hide.
go test -run FuzzVariantParsing -fuzz FuzzVariantParsing -fuzztime 5s ./rtrbench
go test -run FuzzIndoorMap -fuzz FuzzIndoorMap -fuzztime 5s ./internal/maps
go test -race -run FuzzKDTreeNearest -fuzz FuzzKDTreeNearest -fuzztime 5s ./internal/kdtree
go test -run FuzzHistogram -fuzz FuzzHistogram -fuzztime 5s ./internal/obs

echo "== bench smoke (zero-alloc steady-state gate)"
# The hottest kernel steps must not allocate after warmup: steady-state GC
# churn in the measured loop perturbs exactly the latencies the suite
# reports. The benchmarks assert allocs-per-run themselves (b.Fatalf); the
# gate additionally parses the -benchmem column so a silent regression in
# either mechanism fails CI.
for target in "./internal/core/ekfslam BenchmarkEKFSLAMStep" \
              "./internal/core/pfl BenchmarkPFLStep"; do
    pkg=${target% *}
    name=${target#* }
    out=$(go test -run '^$' -bench "^${name}\$" -benchtime 10x -benchmem "$pkg")
    echo "$out"
    allocs=$(echo "$out" | awk '$NF == "allocs/op" {print $(NF-1)}')
    if [ "$allocs" != "0" ]; then
        echo "$name: allocs/op = '$allocs', want 0" >&2
        exit 1
    fi
done

echo "CI OK"
