#!/bin/sh
# ci.sh — the suite's verification gate. Runs formatting, vet, build, and
# the test suite with the race detector (the profile.Sharded tests are the
# concurrency-sensitive part). Usage: scripts/ci.sh  (or: make ci)
set -eu

cd "$(dirname "$0")/.."

# Shared scratch space for the service-smoke and benchdiff stages; the trap
# also reaps a daemon left behind by a failing stage.
benchtmp=$(mktemp -d)
cleanup() {
    [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null
    rm -rf "$benchtmp"
}
trap cleanup EXIT

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
if go test -race -count=1 ./... ; then
    :
else
    status=$?
    echo "go test -race failed" >&2
    exit $status
fi

echo "== suite smoke sweep (parallel, race detector)"
# The full 16-kernel SizeSmall sweep through the parallel engine, with a
# per-run timeout so a hung kernel fails the gate instead of wedging it.
go run -race ./cmd/rtrbench suite --size small --parallel 4 --timeout 120s

echo "== golden verify (digest diff, race detector)"
# Correctness gate: every kernel's result digest (operation counts and
# final-state summaries, never timings) must match the goldens checked in
# under rtrbench/testdata/golden/. Run once serial and once parallel — the
# digests must be bit-identical either way; -metamorphic on the parallel run
# additionally proves trial-order and profiling independence. On intentional
# result changes, regenerate with `make golden-update` and review the diff.
go run -race ./cmd/rtrbench verify -parallel 1
go run -race ./cmd/rtrbench verify -parallel 8 -metamorphic

echo "== intra-kernel workers smoke (parallel algorithms, race detector)"
# The Workers >= 1 code paths of pfl/ekfslam/prm/rrt/rrtstar/rrtpp under the
# race detector. The workers=1-vs-8 digest equality itself rides the
# -metamorphic verify stage above (its "workers" property); this stage is
# what runs the partitioned growth, parallel weigh/motion, and blocked
# matrix kernels with real goroutine interleavings.
go run -race ./cmd/rtrbench suite --size small --parallel 2 --workers 4 \
    --kernels pfl,ekfslam,prm,rrt,rrtstar,rrtpp --timeout 120s

echo "== streaming smoke (periodic real-time mode, race detector)"
# The streaming tentpole end to end: pfl driven as a 2ms-period periodic
# task with an implicit 2ms deadline for 1s of wall time, under the race
# detector, with the deadline-miss accounting sanity-checked from the JSON
# report — ticks advanced and the miss rate is a valid fraction. The
# queue and anytime-cutoff overload policies ride the deterministic
# virtual-clock tests in internal/stream and rtrbench (run above).
go run -race ./cmd/rtrbench stream -kernel pfl -period 2ms -deadline 2ms \
    -duration 1s -policy skip-next -format json -out "$benchtmp/stream.json"
jq -e '.stream.ticks >= 1 and .stream.miss_rate >= 0 and .stream.miss_rate <= 1
       and .stream.policy == "skip-next"' "$benchtmp/stream.json" >/dev/null

echo "== chaos sweep (injected faults, race detector)"
# The same sweep under deterministic fault injection: sensor dropouts and
# NaN corruption, stalls, and injected panics. The gate checks the process
# survives — panics must surface as structured per-kernel errors, not kill
# the sweep — and that panic recovery is race-clean.
go run -race ./cmd/rtrbench suite --size small -chaos -trials 2 -parallel 4 --timeout 120s

echo "== rtrbenchd service smoke (submit, cache hit, gauges, SIGTERM drain)"
# The daemon end to end under the race detector: two submissions of the
# same request — the first executes, the second must be a content-addressed
# cache hit — plus the result-by-digest read path, the queue/cache gauges
# on /metrics, and a SIGTERM drain that must exit 0.
go build -race -o "$benchtmp/rtrbenchd" ./cmd/rtrbenchd
"$benchtmp/rtrbenchd" -addr 127.0.0.1:0 -addrfile "$benchtmp/addr" -batch 2 -maxwait 50ms &
daemon=$!
i=0
while [ ! -s "$benchtmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "rtrbenchd never wrote its address" >&2; exit 1; }
    sleep 0.1
done
base=$(cat "$benchtmp/addr")
req='{"kernels":["dmp","cem"],"trials":1,"seed":7}'
job=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/jobs")
id=$(echo "$job" | jq -re .id)
done_view=$(curl -sf "$base/v1/jobs/$id?wait=120s")
echo "$done_view" | jq -e '.state == "done" and .cached != true' >/dev/null
digest=$(echo "$done_view" | jq -re .digest)
# Repeat submission: served from the store (cached), same digest.
curl -sf -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/jobs" \
    | jq -e --arg d "$digest" '.cached == true and .state == "done" and .digest == $d' >/dev/null
# Content-addressed read path.
curl -sf "$base/v1/results/$digest" | jq -e '.schema == "rtrbenchd.job/v1"' >/dev/null
# Queue and cache gauges on /metrics.
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^rtrbench_queue_depth 0$'
echo "$metrics" | grep -q '^rtrbench_result_cache_hits 1$'
echo "$metrics" | grep -q '^rtrbench_jobs_cached 1$'
# Streaming job through the daemon, submitted under a client identity: it
# completes with a stream block, carries no digest (stream results are
# never content-addressed), and afterwards /metrics exposes the live
# rtrbench_stream_* counters plus the per-client dequeue label.
streamreq='{"stream":{"kernel":"dmp","period":"2ms","duration":"200ms"}}'
sid=$(curl -sf -X POST -H 'Content-Type: application/json' -H 'X-Client-ID: ci-smoke' \
    -d "$streamreq" "$base/v1/jobs" | jq -re .id)
sview=$(curl -sf "$base/v1/jobs/$sid?wait=120s")
echo "$sview" | jq -e '.state == "done" and (.digest // "") == ""
    and .result.kernels[0].stream.ticks >= 1' >/dev/null
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^rtrbench_stream_ticks [1-9]'
echo "$metrics" | grep -q '^rtrbench_stream_jobs_completed 1$'
echo "$metrics" | grep -q 'rtrbench_jobs_dequeued_by_client{client="ci-smoke"} 1'
# SIGTERM drains in-flight work and exits 0.
kill -TERM "$daemon"
wait "$daemon"
daemon=

echo "== rtrbenchd crash-recovery smoke (kill -9, WAL replay, torn tail)"
# The durability drill: populate the cache through a WAL-backed daemon,
# kill -9 it (no drain, no snapshot), tear the final WAL record mid-byte,
# restart over the same data directory, and require (a) /readyz flips to
# ready, (b) recovery reports the truncation on /metrics, (c) the intact
# result is still a cache hit with the same digest, and (d) the torn
# result re-executes instead of serving corrupt state.
datadir="$benchtmp/data"
rm -f "$benchtmp/addr"
"$benchtmp/rtrbenchd" -addr 127.0.0.1:0 -addrfile "$benchtmp/addr" \
    -batch 1 -maxwait 10ms -data "$datadir" -fsync always &
daemon=$!
i=0
while [ ! -s "$benchtmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "rtrbenchd (durable) never wrote its address" >&2; exit 1; }
    sleep 0.1
done
base=$(cat "$benchtmp/addr")
i=0
until curl -sf "$base/readyz" >/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "rtrbenchd (durable) never became ready" >&2; exit 1; }
    sleep 0.1
done
req1='{"kernels":["dmp"],"trials":1,"seed":7}'
req2='{"kernels":["cem"],"trials":1,"seed":7}'
id1=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$req1" "$base/v1/jobs" | jq -re .id)
digest1=$(curl -sf "$base/v1/jobs/$id1?wait=120s" | jq -re .digest)
id2=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$req2" "$base/v1/jobs" | jq -re .id)
curl -sf "$base/v1/jobs/$id2?wait=120s" | jq -e '.state == "done"' >/dev/null
# Crash hard: no drain, no snapshot — the WAL is all that survives.
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=
# Tear the newest WAL record mid-byte (a torn write at the moment of the
# crash): recovery must truncate it, not refuse to start.
lastseg=$(ls "$datadir"/wal-*.jsonl | sort | tail -1)
segsize=$(wc -c < "$lastseg")
truncate -s $((segsize - 3)) "$lastseg"
rm -f "$benchtmp/addr"
"$benchtmp/rtrbenchd" -addr 127.0.0.1:0 -addrfile "$benchtmp/addr" \
    -batch 1 -maxwait 10ms -data "$datadir" -fsync always &
daemon=$!
i=0
while [ ! -s "$benchtmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "restarted rtrbenchd never wrote its address" >&2; exit 1; }
    sleep 0.1
done
base=$(cat "$benchtmp/addr")
# /readyz flips false -> true once the replay lands.
i=0
until curl -sf "$base/readyz" >/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "restarted rtrbenchd never became ready" >&2; exit 1; }
    sleep 0.1
done
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^rtrbench_wal_recovery_truncated 1$'
echo "$metrics" | grep -q '^rtrbench_wal_records_replayed 1$'
# The intact result survived the crash: a repeat submission is a cache hit
# with the same content address, served without re-execution.
curl -sf -X POST -H 'Content-Type: application/json' -d "$req1" "$base/v1/jobs" \
    | jq -e --arg d "$digest1" '.cached == true and .digest == $d' >/dev/null
# The torn result did not: its repeat submission re-executes (202, queued).
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' -d "$req2" "$base/v1/jobs")
[ "$code" = "202" ] || { echo "torn-tail result unexpectedly cached (HTTP $code)" >&2; exit 1; }
kill -TERM "$daemon"
wait "$daemon"
daemon=

echo "== fuzz smoke"
# Short native-fuzz bursts over the untrusted-input surfaces (one -fuzz
# target per invocation is a Go toolchain restriction). The checked-in
# corpora under testdata/fuzz/ already ran as regular tests above. The
# kdtree differential target runs under the race detector: its oracle
# comparison is exactly the kind of traversal code where a data race in the
# shared candidate heap would hide.
go test -run FuzzVariantParsing -fuzz FuzzVariantParsing -fuzztime 5s ./rtrbench
go test -run FuzzIndoorMap -fuzz FuzzIndoorMap -fuzztime 5s ./internal/maps
go test -race -run FuzzKDTreeNearest -fuzz FuzzKDTreeNearest -fuzztime 5s ./internal/kdtree
go test -run FuzzHistogram -fuzz FuzzHistogram -fuzztime 5s ./internal/obs

echo "== benchdiff gate (interleaved A/A statistics + zero-alloc + ledger chain)"
# The single perf regression gate. One -count 10 run of the hottest step
# benchmarks is split sample-by-sample into two interleaved
# rtrbench.bench/v2 half-snapshots (benchjson -split) — an A/A comparison
# on identical code where slow machine drift (thermal state, background
# load) lands evenly on both halves instead of separating them.
# cmd/benchdiff compares the halves with the Mann-Whitney U test and must
# pass: the significance test plus the -threshold noise floor suppress
# pure noise. The same invocation folds in the old alloc gate: -zeroalloc
# pins the steady-state step benchmarks to exactly 0 allocs/op (the
# benchmarks also assert this themselves via b.Fatalf), and any allocs/op
# growth between the halves is a deterministic regression. Finally the
# two snapshots are chained into a throwaway ledger and the hash chain
# verified, exercising the append/verify path end to end.
{
    go test -run '^$' -bench '^BenchmarkEKFSLAMStep$' -benchtime 10x -count 10 -benchmem ./internal/core/ekfslam
    go test -run '^$' -bench '^BenchmarkPFLStep$' -benchtime 10x -count 10 -benchmem ./internal/core/pfl
} | go run ./cmd/benchjson -date ci -goldens rtrbench/testdata/golden -split "$benchtmp/a.json,$benchtmp/b.json"
go run ./cmd/benchdiff -threshold 10 -zeroalloc 'Step$' "$benchtmp/a.json" "$benchtmp/b.json"
go run ./cmd/benchdiff -ledger append -ledger-file "$benchtmp/ledger.jsonl" -note "ci A" "$benchtmp/a.json"
go run ./cmd/benchdiff -ledger append -ledger-file "$benchtmp/ledger.jsonl" -note "ci B" "$benchtmp/b.json"
go run ./cmd/benchdiff -ledger verify -ledger-file "$benchtmp/ledger.jsonl"

echo "CI OK"
