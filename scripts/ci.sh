#!/bin/sh
# ci.sh — the suite's verification gate. Runs formatting, vet, build, and
# the test suite with the race detector (the profile.Sharded tests are the
# concurrency-sensitive part). Usage: scripts/ci.sh  (or: make ci)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
if go test -race -count=1 ./... ; then
    :
else
    status=$?
    echo "go test -race failed" >&2
    exit $status
fi

echo "== suite smoke sweep (parallel, race detector)"
# The full 16-kernel SizeSmall sweep through the parallel engine, with a
# per-run timeout so a hung kernel fails the gate instead of wedging it.
go run -race ./cmd/rtrbench suite --size small --parallel 4 --timeout 120s

echo "== chaos sweep (injected faults, race detector)"
# The same sweep under deterministic fault injection: sensor dropouts and
# NaN corruption, stalls, and injected panics. The gate checks the process
# survives — panics must surface as structured per-kernel errors, not kill
# the sweep — and that panic recovery is race-clean.
go run -race ./cmd/rtrbench suite --size small -chaos -trials 2 -parallel 4 --timeout 120s

echo "== fuzz smoke"
# Short native-fuzz bursts over the untrusted-input surfaces (one -fuzz
# target per invocation is a Go toolchain restriction). The checked-in
# corpora under testdata/fuzz/ already ran as regular tests above.
go test -run FuzzVariantParsing -fuzz FuzzVariantParsing -fuzztime 5s ./rtrbench
go test -run FuzzIndoorMap -fuzz FuzzIndoorMap -fuzztime 5s ./internal/maps

echo "CI OK"
