#!/bin/sh
# ci.sh — the suite's verification gate. Runs formatting, vet, build, and
# the test suite with the race detector (the profile.Sharded tests are the
# concurrency-sensitive part). Usage: scripts/ci.sh  (or: make ci)
set -eu

cd "$(dirname "$0")/.."

# Shared scratch space for the service-smoke and benchdiff stages; the trap
# also reaps a daemon left behind by a failing stage.
benchtmp=$(mktemp -d)
cleanup() {
    [ -n "${daemon:-}" ] && kill "$daemon" 2>/dev/null
    rm -rf "$benchtmp"
}
trap cleanup EXIT

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
if go test -race -count=1 ./... ; then
    :
else
    status=$?
    echo "go test -race failed" >&2
    exit $status
fi

echo "== suite smoke sweep (parallel, race detector)"
# The full 16-kernel SizeSmall sweep through the parallel engine, with a
# per-run timeout so a hung kernel fails the gate instead of wedging it.
go run -race ./cmd/rtrbench suite --size small --parallel 4 --timeout 120s

echo "== golden verify (digest diff, race detector)"
# Correctness gate: every kernel's result digest (operation counts and
# final-state summaries, never timings) must match the goldens checked in
# under rtrbench/testdata/golden/. Run once serial and once parallel — the
# digests must be bit-identical either way; -metamorphic on the parallel run
# additionally proves trial-order and profiling independence. On intentional
# result changes, regenerate with `make golden-update` and review the diff.
go run -race ./cmd/rtrbench verify -parallel 1
go run -race ./cmd/rtrbench verify -parallel 8 -metamorphic

echo "== chaos sweep (injected faults, race detector)"
# The same sweep under deterministic fault injection: sensor dropouts and
# NaN corruption, stalls, and injected panics. The gate checks the process
# survives — panics must surface as structured per-kernel errors, not kill
# the sweep — and that panic recovery is race-clean.
go run -race ./cmd/rtrbench suite --size small -chaos -trials 2 -parallel 4 --timeout 120s

echo "== rtrbenchd service smoke (submit, cache hit, gauges, SIGTERM drain)"
# The daemon end to end under the race detector: two submissions of the
# same request — the first executes, the second must be a content-addressed
# cache hit — plus the result-by-digest read path, the queue/cache gauges
# on /metrics, and a SIGTERM drain that must exit 0.
go build -race -o "$benchtmp/rtrbenchd" ./cmd/rtrbenchd
"$benchtmp/rtrbenchd" -addr 127.0.0.1:0 -addrfile "$benchtmp/addr" -batch 2 -maxwait 50ms &
daemon=$!
i=0
while [ ! -s "$benchtmp/addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "rtrbenchd never wrote its address" >&2; exit 1; }
    sleep 0.1
done
base=$(cat "$benchtmp/addr")
req='{"kernels":["dmp","cem"],"trials":1,"seed":7}'
job=$(curl -sf -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/jobs")
id=$(echo "$job" | jq -re .id)
done_view=$(curl -sf "$base/v1/jobs/$id?wait=120s")
echo "$done_view" | jq -e '.state == "done" and .cached != true' >/dev/null
digest=$(echo "$done_view" | jq -re .digest)
# Repeat submission: served from the store (cached), same digest.
curl -sf -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/jobs" \
    | jq -e --arg d "$digest" '.cached == true and .state == "done" and .digest == $d' >/dev/null
# Content-addressed read path.
curl -sf "$base/v1/results/$digest" | jq -e '.schema == "rtrbenchd.job/v1"' >/dev/null
# Queue and cache gauges on /metrics.
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^rtrbench_queue_depth 0$'
echo "$metrics" | grep -q '^rtrbench_result_cache_hits 1$'
echo "$metrics" | grep -q '^rtrbench_jobs_cached 1$'
# SIGTERM drains in-flight work and exits 0.
kill -TERM "$daemon"
wait "$daemon"
daemon=

echo "== fuzz smoke"
# Short native-fuzz bursts over the untrusted-input surfaces (one -fuzz
# target per invocation is a Go toolchain restriction). The checked-in
# corpora under testdata/fuzz/ already ran as regular tests above. The
# kdtree differential target runs under the race detector: its oracle
# comparison is exactly the kind of traversal code where a data race in the
# shared candidate heap would hide.
go test -run FuzzVariantParsing -fuzz FuzzVariantParsing -fuzztime 5s ./rtrbench
go test -run FuzzIndoorMap -fuzz FuzzIndoorMap -fuzztime 5s ./internal/maps
go test -race -run FuzzKDTreeNearest -fuzz FuzzKDTreeNearest -fuzztime 5s ./internal/kdtree
go test -run FuzzHistogram -fuzz FuzzHistogram -fuzztime 5s ./internal/obs

echo "== benchdiff gate (interleaved A/A statistics + zero-alloc + ledger chain)"
# The single perf regression gate. One -count 10 run of the hottest step
# benchmarks is split sample-by-sample into two interleaved
# rtrbench.bench/v2 half-snapshots (benchjson -split) — an A/A comparison
# on identical code where slow machine drift (thermal state, background
# load) lands evenly on both halves instead of separating them.
# cmd/benchdiff compares the halves with the Mann-Whitney U test and must
# pass: the significance test plus the -threshold noise floor suppress
# pure noise. The same invocation folds in the old alloc gate: -zeroalloc
# pins the steady-state step benchmarks to exactly 0 allocs/op (the
# benchmarks also assert this themselves via b.Fatalf), and any allocs/op
# growth between the halves is a deterministic regression. Finally the
# two snapshots are chained into a throwaway ledger and the hash chain
# verified, exercising the append/verify path end to end.
{
    go test -run '^$' -bench '^BenchmarkEKFSLAMStep$' -benchtime 10x -count 10 -benchmem ./internal/core/ekfslam
    go test -run '^$' -bench '^BenchmarkPFLStep$' -benchtime 10x -count 10 -benchmem ./internal/core/pfl
} | go run ./cmd/benchjson -date ci -goldens rtrbench/testdata/golden -split "$benchtmp/a.json,$benchtmp/b.json"
go run ./cmd/benchdiff -threshold 10 -zeroalloc 'Step$' "$benchtmp/a.json" "$benchtmp/b.json"
go run ./cmd/benchdiff -ledger append -ledger-file "$benchtmp/ledger.jsonl" -note "ci A" "$benchtmp/a.json"
go run ./cmd/benchdiff -ledger append -ledger-file "$benchtmp/ledger.jsonl" -note "ci B" "$benchtmp/b.json"
go run ./cmd/benchdiff -ledger verify -ledger-file "$benchtmp/ledger.jsonl"

echo "CI OK"
