#!/bin/sh
# bench.sh — the suite's performance snapshot. Runs the 16 per-kernel
# Table 1 benchmarks plus the zero-alloc steady-state step benchmarks, all
# with -benchmem, and converts the output to BENCH_<date>.json via
# cmd/benchjson (schema rtrbench.bench/v1: ns/op, B/op, allocs/op per
# kernel). Two snapshots taken before and after a change diff cleanly.
#
# Usage: scripts/bench.sh  (or: make bench)
#   BENCH_DATE=2026-08-05   override the date stamp / output name
#   BENCH_TIME=1x           override -benchtime for the Table 1 sweep
set -eu

cd "$(dirname "$0")/.."

date_tag=${BENCH_DATE:-$(date -u +%Y-%m-%d)}
bench_time=${BENCH_TIME:-1x}
out="BENCH_${date_tag}.json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== Table 1 per-kernel benchmarks (16 kernels, -benchtime $bench_time)"
go test -run '^$' -bench '^BenchmarkTable1_' -benchtime "$bench_time" -benchmem . | tee -a "$tmp"

echo "== steady-state step benchmarks (zero-alloc gated)"
go test -run '^$' -bench '^BenchmarkEKFSLAMStep$' -benchtime 100x -benchmem ./internal/core/ekfslam | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkPFLStep$' -benchtime 100x -benchmem ./internal/core/pfl | tee -a "$tmp"

go run ./cmd/benchjson -date "$date_tag" -out "$out" <"$tmp"
echo "wrote $out"
