#!/bin/sh
# bench.sh — the suite's performance snapshot. Runs the 16 per-kernel
# Table 1 benchmarks plus the zero-alloc steady-state step benchmarks with
# -benchmem and -count (repeated samples), and converts the output to
# BENCH_<date>.json via cmd/benchjson (schema rtrbench.bench/v2: raw
# per-run ns/op, B/op, allocs/op samples per benchmark, stamped with the
# SHA-256 of every checked-in golden digest). Repeated samples are what
# make two snapshots statistically comparable: `benchdiff old.json
# new.json` runs a Mann-Whitney U test per benchmark instead of diffing
# two n=1 numbers, and `benchdiff -ledger append` chains the snapshot into
# the tamper-evident PERF_LEDGER.jsonl history.
#
# Usage: scripts/bench.sh  (or: make bench)
#   BENCH_DATE=2026-08-05   override the date stamp / output name
#   BENCH_TIME=1x           override -benchtime for the Table 1 sweep
#   BENCH_COUNT=5           override -count (samples per benchmark, >= 5
#                           recommended — below that the U test cannot
#                           reach p < 0.05 at all)
set -eu

cd "$(dirname "$0")/.."

date_tag=${BENCH_DATE:-$(date -u +%Y-%m-%d)}
bench_time=${BENCH_TIME:-1x}
bench_count=${BENCH_COUNT:-5}
out="BENCH_${date_tag}.json"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== Table 1 per-kernel benchmarks (16 kernels, -benchtime $bench_time, -count $bench_count)"
go test -run '^$' -bench '^BenchmarkTable1_' -benchtime "$bench_time" -count "$bench_count" -benchmem . | tee -a "$tmp"

echo "== intra-kernel workers sweep (pfl/ekfslam/prm/rrt* at 0/1/2/4/8 workers)"
# The parallel-algorithm scaling curve: w0 is the serial baseline, w1-w8 the
# deterministic parallel algorithm under growing goroutine budgets. The
# sub-benchmark names land in the snapshot as Workers/<kernel>/w<N>, so
# benchdiff tracks each point of the curve independently.
go test -run '^$' -bench '^BenchmarkWorkers$' -benchtime "$bench_time" -count "$bench_count" -benchmem . | tee -a "$tmp"

echo "== steady-state step benchmarks (zero-alloc gated, -count $bench_count)"
go test -run '^$' -bench '^BenchmarkEKFSLAMStep$' -benchtime 100x -count "$bench_count" -benchmem ./internal/core/ekfslam | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkPFLStep$' -benchtime 100x -count "$bench_count" -benchmem ./internal/core/pfl | tee -a "$tmp"

go run ./cmd/benchjson -date "$date_tag" -goldens rtrbench/testdata/golden -out "$out" <"$tmp"
echo "wrote $out"
echo "compare:  go run ./cmd/benchdiff BENCH_<old>.json $out"
echo "chain:    go run ./cmd/benchdiff -ledger append $out   (after rtrbench verify)"
