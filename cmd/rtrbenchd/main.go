// Command rtrbenchd runs the RTRBench suite engine as a long-lived batched
// benchmark service.
//
// Clients submit sweep requests over HTTP/JSON; the daemon coalesces them
// into batches on a bounded queue, executes them on the shared rtrbench
// engine, and stores finished runs content-addressed by their golden
// digest, so a repeat submission is served from the store without
// re-executing anything.
//
//	POST /v1/jobs            submit a job (202 queued, 200 cache hit,
//	                         429 queue full or rate limited, 503 draining)
//	GET  /v1/jobs/{id}       poll a job; ?wait=30s blocks until done
//	GET  /v1/results/{d}     fetch a stored result by content address
//	GET  /healthz            liveness probe (200 while the process serves)
//	GET  /readyz             readiness probe (503 while replaying the WAL
//	                         or draining)
//	GET  /metrics            queue/batch/cache gauges + suite counters
//	GET  /ledger             hash-chained perf history
//	GET  /debug/pprof/       live profiling
//
// A job body with a "stream" block runs in streaming mode instead of a
// batch sweep: the named kernel executes as a periodic real-time task
// (period/deadline/duration) and the result carries per-tick deadline-miss
// accounting. Stream jobs must be wall-time bounded below -job-timeout and
// bypass the result cache — timing measurements are not content-
// addressable answers — while /metrics exposes their live
// rtrbench_stream_* counters as they run.
//
// With -data set, the result store is backed by a checksummed write-ahead
// log in that directory: a kill -9 restart replays it (torn tails
// truncated, never fatal) and the digest cache survives. Per-client
// fairness (-client-rate, -client-capacity) keeps one flooding tenant
// from starving the rest, and the job watchdog (-job-timeout,
// -max-attempts) cancels wedged executors and retries with backoff.
//
// SIGTERM and SIGINT drain gracefully: new submissions are rejected with
// 503 while everything already admitted runs to completion and stays
// pollable; the process exits once the queue is empty.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("rtrbenchd", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:6061", "host:port to listen on (port 0 picks a free port)")
		addrFile = fs.String("addrfile", "", "write the bound base URL to this file once listening (for port 0)")
		capacity = fs.Int("capacity", 64, "queued jobs admitted before submissions get 429")
		batch    = fs.Int("batch", 4, "jobs per batch (a full batch flushes immediately)")
		maxWait  = fs.Duration("maxwait", 50*time.Millisecond, "flush a partial batch this long after its first job")
		workers  = fs.Int("workers", 1, "concurrent batch executors")
		parallel = fs.Int("parallel", runtime.NumCPU(), "kernels running concurrently within one job")
		cache    = fs.Int("cache", 256, "result-store entries kept (content-addressed, FIFO eviction)")
		drainFor = fs.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs")
		ledger   = fs.String("ledger", obs.DefaultLedgerPath, "perf-ledger file backing /ledger")

		dataDir    = fs.String("data", "", "directory for the result-store write-ahead log (empty: in-memory only)")
		fsyncMode  = fs.String("fsync", "interval", "WAL fsync policy: always, interval, or never")
		fsyncEvery = fs.Duration("fsync-every", 100*time.Millisecond, "flush cadence for -fsync=interval")
		snapEvery  = fs.Int("snapshot-every", 64, "compact the WAL behind a snapshot every this many stored results")

		clientRate  = fs.Float64("client-rate", 0, "per-client admitted jobs per second (0: unlimited)")
		clientBurst = fs.Int("client-burst", 0, "per-client token-bucket burst (0: max(1, client-rate))")
		clientCap   = fs.Int("client-capacity", 0, "queued jobs one client may hold (0: whole queue)")

		jobTimeout  = fs.Duration("job-timeout", 0, "per-job execution budget enforced by the watchdog (0: none)")
		maxAttempts = fs.Int("max-attempts", 1, "executor attempts per job before it fails terminally")
		retryBack   = fs.Duration("retry-backoff", 100*time.Millisecond, "base requeue backoff after a transient failure")

		maxBody     = fs.Int64("max-body", 1<<20, "largest accepted request body in bytes")
		jobTTL      = fs.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay pollable by ID")
		jobIndexMax = fs.Int("job-index-max", 1024, "most job records kept in the poll index")
	)
	_ = fs.Parse(os.Args[1:])

	log.SetPrefix("rtrbenchd: ")
	log.SetFlags(0)

	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatal(err)
	}

	s, err := newServer(config{
		addr:         *addr,
		capacity:     *capacity,
		batchSize:    *batch,
		maxWait:      *maxWait,
		workers:      *workers,
		parallel:     *parallel,
		cacheEntries: *cache,
		ledgerPath:   *ledger,

		dataDir:       *dataDir,
		fsync:         fsyncPolicy,
		fsyncEvery:    *fsyncEvery,
		snapshotEvery: *snapEvery,

		clientRate:     *clientRate,
		clientBurst:    *clientBurst,
		clientCapacity: *clientCap,
		jobTimeout:     *jobTimeout,
		maxAttempts:    *maxAttempts,
		retryBackoff:   *retryBack,

		maxBody:     *maxBody,
		jobTTL:      *jobTTL,
		jobIndexMax: *jobIndexMax,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (batch=%d maxwait=%v capacity=%d workers=%d)",
		s.debug.URL, *batch, *maxWait, *capacity, *workers)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(s.debug.URL+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining: new submissions get 503, in-flight jobs run to completion")
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := s.shutdown(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	log.Printf("drained cleanly")
}
