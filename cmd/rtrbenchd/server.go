package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/golden"
	"repro/internal/jobqueue"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/rtrbench"
)

// config is the server's construction-time configuration (see main for the
// flag defaults).
type config struct {
	addr         string
	capacity     int
	batchSize    int
	maxWait      time.Duration
	workers      int
	parallel     int
	cacheEntries int
	ledgerPath   string
}

// jobOutcome is what the executor hands back through the queue: the job's
// content address and its serialized result document.
type jobOutcome struct {
	digest string
	doc    []byte
}

// jobRecord is the server-side state of one submitted job. A cache hit
// completes at admission (job is nil, digest/doc filled in); everything
// else carries its queue handle.
type jobRecord struct {
	id     string
	reqKey string
	opts   rtrbench.SuiteOptions

	cached bool
	digest string
	doc    []byte

	job *jobqueue.Job[*jobRecord, jobOutcome]
}

// server is the rtrbenchd service: HTTP admission on top of the batching
// job queue, the shared rtrbench engine, and the content-addressed result
// store, all mounted on the obs debug server so /metrics, /ledger, and
// pprof come along for free.
type server struct {
	cfg    config
	reg    *obs.Registry
	store  *resultstore.Store
	engine *rtrbench.Engine
	queue  *jobqueue.Queue[*jobRecord, jobOutcome]
	debug  *obs.DebugServer

	mu     sync.Mutex
	jobs   map[string]*jobRecord
	nextID int
}

// newServer builds the service and starts listening on cfg.addr (port 0
// picks a free port; the bound URL is in server.debug.URL).
func newServer(cfg config) (*server, error) {
	if cfg.parallel <= 0 {
		cfg.parallel = runtime.NumCPU()
	}
	s := &server{
		cfg:    cfg,
		reg:    &obs.Registry{},
		store:  resultstore.New(resultstore.Options{MaxEntries: cfg.cacheEntries}),
		engine: &rtrbench.Engine{},
		jobs:   map[string]*jobRecord{},
	}
	// Publish the gauges up front so a scrape before the first job still
	// shows the queue/cache surface.
	s.reg.SetGauge("queue_depth", 0)
	s.reg.SetGauge("batch_size", 0)
	s.publishStoreGauges()
	s.queue = jobqueue.New(context.Background(), jobqueue.Options{
		Capacity:  cfg.capacity,
		BatchSize: cfg.batchSize,
		MaxWait:   cfg.maxWait,
		Workers:   cfg.workers,
		OnDepth:   func(d int) { s.reg.SetGauge("queue_depth", int64(d)) },
		OnBatch: func(n int) {
			s.reg.SetGauge("batch_size", int64(n))
			s.reg.Add("batches", 1)
		},
	}, s.execBatch)

	dbg, err := obs.StartDebugServer(obs.DebugOptions{
		Addr:       cfg.addr,
		Registry:   s.reg,
		LedgerPath: cfg.ledgerPath,
		Handlers: map[string]http.Handler{
			"/v1/jobs":     http.HandlerFunc(s.handleSubmit),
			"/v1/jobs/":    http.HandlerFunc(s.handleJob),
			"/v1/results/": http.HandlerFunc(s.handleResult),
		},
	})
	if err != nil {
		_ = s.queue.Drain(context.Background())
		return nil, err
	}
	s.debug = dbg
	return s, nil
}

// shutdown is the graceful exit: drain the queue (reject new submissions,
// finish everything admitted), then stop the HTTP server. Polls keep
// working while the drain runs so clients can collect in-flight results.
func (s *server) shutdown(ctx context.Context) error {
	err := s.queue.Drain(ctx)
	if cerr := s.debug.Close(); err == nil {
		err = cerr
	}
	return err
}

// duration is a time.Duration that unmarshals from either a Go duration
// string ("30s") or integer nanoseconds.
type duration time.Duration

func (d *duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = duration(n)
	return nil
}

// jobRequest is the POST /v1/jobs body: the suite-sweep parameters a client
// may set. Everything is optional; the zero request is the full small-size
// sweep at seed 1, one trial per kernel.
type jobRequest struct {
	Kernels         []string `json:"kernels,omitempty"`
	Size            string   `json:"size,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	Trials          int      `json:"trials,omitempty"`
	Warmup          int      `json:"warmup,omitempty"`
	Timeout         duration `json:"timeout,omitempty"`
	Deadline        duration `json:"deadline,omitempty"`
	StepLatency     bool     `json:"step_latency,omitempty"`
	Retries         int      `json:"retries,omitempty"`
	RetryBackoff    duration `json:"retry_backoff,omitempty"`
	ContinueOnError bool     `json:"continue_on_error,omitempty"`
}

// suiteOptions maps a request onto normalized SuiteOptions, rejecting
// anything the engine would reject — admission-time validation so a bad
// request is a 400, not a failed job.
func (s *server) suiteOptions(req jobRequest) (rtrbench.SuiteOptions, error) {
	opts := rtrbench.SuiteOptions{
		Options: rtrbench.Options{
			Seed:        req.Seed,
			Deadline:    time.Duration(req.Deadline),
			StepLatency: req.StepLatency,
		},
		Kernels:         req.Kernels,
		Parallel:        s.cfg.parallel,
		Trials:          req.Trials,
		Warmup:          req.Warmup,
		Timeout:         time.Duration(req.Timeout),
		ContinueOnError: req.ContinueOnError,
		Retries:         req.Retries,
		RetryBackoff:    time.Duration(req.RetryBackoff),
	}
	switch req.Size {
	case "", "small":
		opts.Size = rtrbench.SizeSmall
	case "default":
		opts.Size = rtrbench.SizeDefault
	default:
		return opts, fmt.Errorf("unknown size %q (want small or default)", req.Size)
	}
	seen := map[string]bool{}
	for _, name := range req.Kernels {
		if _, ok := rtrbench.Lookup(name); !ok {
			return opts, fmt.Errorf("unknown kernel %q", name)
		}
		if seen[name] {
			return opts, fmt.Errorf("kernel %q listed twice", name)
		}
		seen[name] = true
	}
	return opts.Normalize()
}

// requestKey canonicalizes normalized options into the result-cache
// identity. Parallel is erased first: trial t always runs with seed base+t,
// so execution concurrency cannot change the answer and must not split the
// cache.
func requestKey(opts rtrbench.SuiteOptions) (string, error) {
	opts.Parallel = 0
	b, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("request key: %w", err)
	}
	return string(b), nil
}

// execBatch is the queue executor: it runs each job of a dispatched batch
// on the shared engine, serializes the outcome, and feeds clean runs into
// the content-addressed store.
func (s *server) execBatch(ctx context.Context, batch []*jobqueue.Job[*jobRecord, jobOutcome]) {
	for _, j := range batch {
		rec := j.Req
		res, err := s.engine.Run(ctx, rec.opts)
		if err != nil {
			j.Finish(jobOutcome{}, err)
			s.reg.Add("jobs_failed", 1)
			continue
		}
		doc, digest, err := s.document(rec, res)
		if err != nil {
			j.Finish(jobOutcome{}, err)
			s.reg.Add("jobs_failed", 1)
			continue
		}
		// Only clean sweeps enter the cache: a failed kernel's digest does
		// not name an answer, and a repeat submission deserves a fresh run.
		if len(res.Failures()) == 0 {
			s.store.Put(rec.reqKey, digest, doc)
			s.publishStoreGauges()
		}
		j.Finish(jobOutcome{digest: digest, doc: doc}, nil)
		s.reg.Add("jobs_completed", 1)
	}
}

// jobDocument is the stored/returned result of one job, schema
// "rtrbenchd.job/v1". Kernels reuse the rtrbench.report/v1 entries the CLI
// emits, so a job result and an offline report are the same shape.
type jobDocument struct {
	Schema         string             `json:"schema"`
	Digest         string             `json:"digest"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Kernels        []obs.KernelReport `json:"kernels"`
	Failures       []docFailure       `json:"failures,omitempty"`
}

type docFailure struct {
	Kernel string `json:"kernel"`
	Trial  int    `json:"trial"`
	Fault  string `json:"fault,omitempty"`
	Error  string `json:"error"`
}

// document serializes a finished sweep and computes its content address.
func (s *server) document(rec *jobRecord, res rtrbench.SuiteResult) (doc []byte, digest string, err error) {
	digest, err = suiteDigest(res, rec.opts.Seed)
	if err != nil {
		return nil, "", err
	}
	jd := jobDocument{
		Schema:         "rtrbenchd.job/v1",
		Digest:         digest,
		ElapsedSeconds: res.Elapsed.Seconds(),
		Kernels:        report.Suite(res),
	}
	for _, f := range res.Failures() {
		jd.Failures = append(jd.Failures, docFailure{
			Kernel: f.Kernel, Trial: f.Trial, Fault: f.Fault, Error: f.Err.Error(),
		})
	}
	doc, err = json.Marshal(jd)
	if err != nil {
		return nil, "", err
	}
	return doc, digest, nil
}

// suiteDigest folds the per-kernel golden digests into one job-level
// content address: a golden digest whose fields are the kernel sums. Like
// every golden digest it carries no wall-clock quantities, so two runs of
// the same request collide exactly when they computed the same answers.
func suiteDigest(res rtrbench.SuiteResult, seed int64) (string, error) {
	d := golden.Digest{Kernel: "rtrbenchd.job", Seed: seed}
	for _, k := range res.Kernels {
		if k.Err != nil {
			d.Fields = append(d.Fields, golden.Field{Name: k.Info.Name, Value: "error"})
			continue
		}
		sum, err := rtrbench.DigestSum(k.Result, seed)
		if err != nil {
			return "", err
		}
		d.Fields = append(d.Fields, golden.Field{Name: k.Info.Name, Value: sum})
	}
	golden.SortFields(d.Fields)
	return golden.Sum(d)
}

// handleSubmit is POST /v1/jobs: validate, consult the result cache, and
// either answer from the store (200, no execution) or admit to the queue
// (202). A full queue is 429, a draining server 503 — typed backpressure,
// not timeouts.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	opts, err := s.suiteOptions(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := requestKey(opts)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	rec := &jobRecord{reqKey: key, opts: opts}
	status := http.StatusAccepted
	if digest, doc, ok := s.store.Lookup(key); ok {
		rec.cached, rec.digest, rec.doc = true, digest, doc
		s.reg.Add("jobs_cached", 1)
		status = http.StatusOK
	} else {
		job, err := s.queue.Submit(rec)
		switch {
		case errors.Is(err, jobqueue.ErrQueueFull):
			s.publishStoreGauges()
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		case errors.Is(err, jobqueue.ErrDraining):
			s.publishStoreGauges()
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rec.job = job
	}
	s.publishStoreGauges()
	s.register(rec)
	s.reg.Add("jobs_submitted", 1)
	writeJSON(w, status, s.view(rec))
}

// handleJob is GET /v1/jobs/{id}, optionally blocking via ?wait=DURATION
// until the job finishes (or the wait expires — the poll then reports the
// current state, it is not an error).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	rec, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if ws := r.URL.Query().Get("wait"); ws != "" && !rec.cached {
		d, err := time.ParseDuration(ws)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait %q: %v", ws, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		select {
		case <-rec.job.DoneCh():
		case <-ctx.Done():
		}
		cancel()
	}
	writeJSON(w, http.StatusOK, s.view(rec))
}

// handleResult is GET /v1/results/{digest}: the content-addressed read
// path. Any client holding a digest — from a job view, a stored report, a
// teammate — fetches the document it names, no job ID required.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	doc, ok := s.store.Get(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for digest %q", digest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

// jobView is the JSON the job endpoints return: state, per-stage
// timestamps, batch attribution, and (when finished) the digest and result
// document.
type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
	// Batch and BatchSize attribute the job to its flush: jobs sharing a
	// batch number were coalesced into one dispatch.
	Batch     int             `json:"batch,omitempty"`
	BatchSize int             `json:"batch_size,omitempty"`
	Enqueued  string          `json:"enqueued_at,omitempty"`
	Started   string          `json:"started_at,omitempty"`
	Done      string          `json:"done_at,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func (s *server) view(rec *jobRecord) jobView {
	v := jobView{ID: rec.id}
	if rec.cached {
		v.State, v.Cached = "done", true
		v.Digest, v.Result = rec.digest, rec.doc
		return v
	}
	t := rec.job.Times()
	v.Enqueued, v.Started, v.Done = stamp(t.Enqueued), stamp(t.Started), stamp(t.Done)
	v.Batch, v.BatchSize = rec.job.Batch()
	switch {
	case rec.job.Finished():
		out, err := rec.job.Result()
		if err != nil {
			v.State, v.Error = "failed", err.Error()
		} else {
			v.State, v.Digest, v.Result = "done", out.digest, out.doc
		}
	case !t.Started.IsZero():
		v.State = "running"
	default:
		v.State = "queued"
	}
	return v
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

// register assigns the job its ID and indexes it for polling.
func (s *server) register(rec *jobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	rec.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[rec.id] = rec
}

// publishStoreGauges mirrors the result-store statistics into the metrics
// registry.
func (s *server) publishStoreGauges() {
	hits, misses, entries := s.store.Stats()
	s.reg.SetGauge("result_cache_hits", hits)
	s.reg.SetGauge("result_cache_misses", misses)
	s.reg.SetGauge("result_cache_entries", int64(entries))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
