package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/golden"
	"repro/internal/jobqueue"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/rtrbench"
)

// config is the server's construction-time configuration (see main for the
// flag defaults).
type config struct {
	addr         string
	capacity     int
	batchSize    int
	maxWait      time.Duration
	workers      int
	parallel     int
	cacheEntries int
	ledgerPath   string

	// Durability: dataDir == "" keeps the result store in-memory; otherwise
	// it is backed by a write-ahead log under dataDir, replayed on startup.
	dataDir       string
	fsync         durable.FsyncPolicy
	fsyncEvery    time.Duration
	snapshotEvery int

	// Fairness and watchdog knobs, mapped straight onto jobqueue.Options.
	clientRate     float64
	clientBurst    int
	clientCapacity int
	jobTimeout     time.Duration
	abandonGrace   time.Duration
	maxAttempts    int
	retryBackoff   time.Duration

	// HTTP hardening.
	maxBody int64

	// Job-index bounding: terminal jobs are evicted after jobTTL, and the
	// index never holds more than jobIndexMax records.
	jobTTL      time.Duration
	jobIndexMax int
}

// withDefaults fills the zero-config values newServer relies on.
func (c config) withDefaults() config {
	if c.parallel <= 0 {
		c.parallel = runtime.NumCPU()
	}
	if c.maxBody <= 0 {
		c.maxBody = 1 << 20
	}
	if c.jobTTL <= 0 {
		c.jobTTL = 15 * time.Minute
	}
	if c.jobIndexMax <= 0 {
		c.jobIndexMax = 1024
	}
	return c
}

// jobOutcome is what the executor hands back through the queue: the job's
// content address and its serialized result document.
type jobOutcome struct {
	digest string
	doc    []byte
}

// jobRecord is the server-side state of one submitted job. A cache hit
// completes at admission (job is nil, digest/doc filled in); everything
// else carries its queue handle.
type jobRecord struct {
	id     string
	reqKey string
	opts   rtrbench.SuiteOptions

	// stream, when non-nil, marks a streaming job: execBatch runs the
	// periodic scheduler instead of the sweep engine, and the result never
	// enters the content-addressed store (reqKey stays empty — streaming
	// accounting is timing-dependent, not content-addressable).
	stream *rtrbench.StreamOptions

	cached   bool
	cachedAt time.Time
	digest   string
	doc      []byte

	job *jobqueue.Job[*jobRecord, jobOutcome]
}

// terminalAt returns when the job reached a terminal state, or a zero time
// if it is still live (queued, running, retrying). Only terminal jobs are
// eligible for index eviction.
func (rec *jobRecord) terminalAt() time.Time {
	if rec.cached {
		return rec.cachedAt
	}
	if rec.job.Finished() {
		return rec.job.Times().Done
	}
	return time.Time{}
}

// terminalDigest is the digest an evicted job's tombstone points at, if it
// produced one.
func (rec *jobRecord) terminalDigest() string {
	if rec.cached {
		return rec.digest
	}
	if out, err := rec.job.Result(); err == nil {
		return out.digest
	}
	return ""
}

// server is the rtrbenchd service: HTTP admission on top of the batching
// job queue, the shared rtrbench engine, and the content-addressed result
// store, all mounted on the obs debug server so /metrics, /ledger, and
// pprof come along for free.
type server struct {
	cfg    config
	reg    *obs.Registry
	engine *rtrbench.Engine
	queue  *jobqueue.Queue[*jobRecord, jobOutcome]
	debug  *obs.DebugServer

	// store is published by the recovery goroutine once the WAL replay
	// finishes (immediately, for an in-memory store). wal is the durable
	// log backing it, nil in-memory. Until the store lands, submissions
	// and result reads answer 503 and /readyz reports not ready.
	store      atomic.Pointer[resultstore.Store]
	wal        atomic.Pointer[durable.Log]
	ready      atomic.Bool
	draining   atomic.Bool
	recoverErr atomic.Pointer[string]

	mu         sync.Mutex
	jobs       map[string]*jobRecord
	tombstones map[string]string // evicted job id -> digest (empty = failed)
	tombOrder  []string
	nextID     int

	sweepStop    chan struct{}
	sweepDone    chan struct{}
	shutdownOnce sync.Once
	shutdownErr  error
}

// newServer builds the service and starts listening on cfg.addr (port 0
// picks a free port; the bound URL is in server.debug.URL). With a data
// directory configured the result store is recovered from its write-ahead
// log in the background: the server is reachable immediately (so probes
// can watch /readyz flip) but not ready until the replay completes.
func newServer(cfg config) (*server, error) {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:        cfg,
		reg:        &obs.Registry{},
		engine:     &rtrbench.Engine{},
		jobs:       map[string]*jobRecord{},
		tombstones: map[string]string{},
		sweepStop:  make(chan struct{}),
		sweepDone:  make(chan struct{}),
	}
	// Publish the gauges up front so a scrape before the first job still
	// shows the queue/cache surface.
	s.reg.SetGauge("queue_depth", 0)
	s.reg.SetGauge("batch_size", 0)
	s.reg.SetGauge("ready", 0)
	s.reg.SetGauge("job_index_size", 0)
	s.queue = jobqueue.New(context.Background(), jobqueue.Options{
		Capacity:          cfg.capacity,
		PerClientCapacity: cfg.clientCapacity,
		BatchSize:         cfg.batchSize,
		MaxWait:           cfg.maxWait,
		Workers:           cfg.workers,
		RatePerClient:     cfg.clientRate,
		Burst:             cfg.clientBurst,
		JobTimeout:        cfg.jobTimeout,
		AbandonGrace:      cfg.abandonGrace,
		MaxAttempts:       cfg.maxAttempts,
		RetryBackoff:      cfg.retryBackoff,
		// The daemon retries exactly what the engine's own trial loop would
		// retry: deadline expiry, nothing else.
		Transient: rtrbench.IsTransient,
		OnDepth:   func(d int) { s.reg.SetGauge("queue_depth", int64(d)) },
		OnBatch: func(n int) {
			s.reg.SetGauge("batch_size", int64(n))
			s.reg.Add("batches", 1)
		},
		// Fairness counters carry a bounded per-client label next to the
		// plain totals: fairness is only observable per tenant, and the
		// labeled families' cardinality bound keeps /metrics safe against an
		// open client-ID namespace.
		OnRateLimited: func(client string) {
			s.reg.Add("rate_limited", 1)
			s.reg.AddLabeled("rate_limited_by_client", "client", client, 1)
		},
		OnDequeue: func(client string) {
			s.reg.AddLabeled("jobs_dequeued_by_client", "client", client, 1)
		},
		OnRetry:   func(string, int, time.Duration) { s.reg.Add("retries_scheduled", 1) },
		OnAbandon: func() { s.reg.Add("executors_abandoned", 1) },
	}, s.execBatch)

	dbg, err := obs.StartDebugServer(obs.DebugOptions{
		Addr:       cfg.addr,
		Registry:   s.reg,
		LedgerPath: cfg.ledgerPath,
		// ReadTimeout bounds slow request bodies; WriteTimeout must leave
		// room for long ?wait= polls and is therefore generous.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
		Handlers: map[string]http.Handler{
			"/v1/jobs":     http.HandlerFunc(s.handleSubmit),
			"/v1/jobs/":    http.HandlerFunc(s.handleJob),
			"/v1/results/": http.HandlerFunc(s.handleResult),
			"/healthz":     http.HandlerFunc(s.handleHealthz),
			"/readyz":      http.HandlerFunc(s.handleReadyz),
		},
	})
	if err != nil {
		_ = s.queue.Drain(context.Background())
		return nil, err
	}
	s.debug = dbg
	if cfg.dataDir == "" {
		// In-memory stores have nothing to replay: become ready before the
		// first request can arrive.
		s.recover()
	} else {
		go s.recover()
	}
	go s.sweepLoop()
	return s, nil
}

// recover builds the result store — replaying the write-ahead log when the
// server is durable — and flips the server ready. It runs in the
// background so /healthz and /readyz serve during a long replay; a
// recovery failure leaves the server up but permanently not ready (the
// operator sees the error on /readyz rather than a crash loop that
// re-corrupts the data directory).
func (s *server) recover() {
	if s.cfg.dataDir == "" {
		s.store.Store(resultstore.New(resultstore.Options{MaxEntries: s.cfg.cacheEntries}))
		s.publishStoreGauges()
		s.ready.Store(true)
		s.reg.SetGauge("ready", 1)
		return
	}
	wal, err := durable.Open(durable.Options{
		Dir:        s.cfg.dataDir,
		Fsync:      s.cfg.fsync,
		FsyncEvery: s.cfg.fsyncEvery,
	})
	if err == nil {
		var st *resultstore.Store
		var info durable.RecoveryInfo
		st, info, err = resultstore.Open(resultstore.Options{
			MaxEntries:    s.cfg.cacheEntries,
			Log:           wal,
			SnapshotEvery: s.cfg.snapshotEvery,
		})
		if err == nil {
			s.wal.Store(wal)
			s.reg.SetGauge("wal_records_replayed", int64(info.Records))
			if info.Truncated {
				s.reg.SetGauge("wal_recovery_truncated", 1)
				log.Printf("wal: recovered with torn tail truncated at %s:%d", info.TruncatedFile, info.TruncatedAt)
			}
			s.reg.SetGauge("wal_segments", int64(wal.Segments()))
			s.store.Store(st)
			s.publishStoreGauges()
			s.ready.Store(true)
			s.reg.SetGauge("ready", 1)
			log.Printf("wal: recovered %d records (snapshot seq %d) from %s", info.Records, info.SnapshotSeq, s.cfg.dataDir)
			return
		}
		wal.Close()
	}
	msg := err.Error()
	s.recoverErr.Store(&msg)
	log.Printf("wal: recovery failed, serving not-ready: %v", err)
}

// getStore returns the result store, or nil while recovery is running (or
// after it failed).
func (s *server) getStore() *resultstore.Store { return s.store.Load() }

// shutdown is the graceful exit: mark not-ready (load balancers stop
// sending work), drain the queue (reject new submissions, finish
// everything admitted), then compact the WAL and stop the HTTP server.
// Polls keep working while the drain runs so clients can collect
// in-flight results.
func (s *server) shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() { s.shutdownErr = s.shutdownLocked(ctx) })
	return s.shutdownErr
}

func (s *server) shutdownLocked(ctx context.Context) error {
	s.draining.Store(true)
	s.reg.SetGauge("ready", 0)
	err := s.queue.Drain(ctx)
	close(s.sweepStop)
	<-s.sweepDone
	if st, wal := s.getStore(), s.wal.Load(); st != nil && wal != nil {
		// A clean exit leaves a fresh snapshot so the next start replays
		// almost nothing.
		if serr := st.Snapshot(); err == nil && serr != nil {
			err = serr
		}
		if cerr := wal.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if cerr := s.debug.Close(); err == nil {
		err = cerr
	}
	return err
}

// duration is a time.Duration that unmarshals from either a Go duration
// string ("30s") or integer nanoseconds.
type duration time.Duration

func (d *duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = duration(n)
	return nil
}

// jobRequest is the POST /v1/jobs body: the suite-sweep parameters a client
// may set. Everything is optional; the zero request is the full small-size
// sweep at seed 1, one trial per kernel.
type jobRequest struct {
	Kernels         []string `json:"kernels,omitempty"`
	Size            string   `json:"size,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	Trials          int      `json:"trials,omitempty"`
	Warmup          int      `json:"warmup,omitempty"`
	Timeout         duration `json:"timeout,omitempty"`
	Deadline        duration `json:"deadline,omitempty"`
	StepLatency     bool     `json:"step_latency,omitempty"`
	Workers         int      `json:"workers,omitempty"`
	Retries         int      `json:"retries,omitempty"`
	RetryBackoff    duration `json:"retry_backoff,omitempty"`
	ContinueOnError bool     `json:"continue_on_error,omitempty"`

	// Stream switches the job to streaming mode: the named kernel runs as a
	// periodic real-time task instead of a batch sweep. Stream jobs bypass
	// the result cache — their accounting is timing-dependent, so a cached
	// answer would be a lie — and must be time-bounded so the job watchdog
	// stays meaningful. The batch-sweep fields above other than size, seed,
	// and workers are ignored.
	Stream *streamRequest `json:"stream,omitempty"`
}

// streamRequest is the streaming block of a job submission, mirroring the
// `rtrbench stream` flags.
type streamRequest struct {
	Kernel   string   `json:"kernel"`
	Period   duration `json:"period"`
	Deadline duration `json:"deadline,omitempty"`
	Duration duration `json:"duration"`
	MaxTicks int64    `json:"max_ticks,omitempty"`
	Policy   string   `json:"policy,omitempty"`
}

// streamOptions maps a streaming request onto normalized StreamOptions —
// the admission-time validation twin of suiteOptions. Daemon streams must
// be wall-time bounded (Duration, not just MaxTicks) and must fit under
// the job watchdog, otherwise every stream job would end in a watchdog
// retry loop.
func (s *server) streamOptions(req jobRequest) (rtrbench.StreamOptions, error) {
	sr := req.Stream
	opts := rtrbench.StreamOptions{
		Options: rtrbench.Options{
			Seed:    req.Seed,
			Workers: req.Workers,
		},
		Kernel:   sr.Kernel,
		Period:   time.Duration(sr.Period),
		Deadline: time.Duration(sr.Deadline),
		Duration: time.Duration(sr.Duration),
		MaxTicks: sr.MaxTicks,
	}
	switch req.Size {
	case "", "small":
		opts.Size = rtrbench.SizeSmall
	case "default":
		opts.Size = rtrbench.SizeDefault
	default:
		return opts, fmt.Errorf("unknown size %q (want small or default)", req.Size)
	}
	p, err := rtrbench.ParseStreamPolicy(sr.Policy)
	if err != nil {
		return opts, err
	}
	opts.Policy = p
	if opts.Duration <= 0 {
		return opts, fmt.Errorf("stream jobs must set a duration (a ticks-only bound has no wall-time limit)")
	}
	if s.cfg.jobTimeout > 0 && opts.Duration >= s.cfg.jobTimeout {
		return opts, fmt.Errorf("stream duration %v must be below the job watchdog timeout %v",
			opts.Duration, s.cfg.jobTimeout)
	}
	if _, ok := rtrbench.Lookup(opts.Kernel); !ok {
		return opts, fmt.Errorf("unknown kernel %q", opts.Kernel)
	}
	return opts.Normalize()
}

// suiteOptions maps a request onto normalized SuiteOptions, rejecting
// anything the engine would reject — admission-time validation so a bad
// request is a 400, not a failed job.
func (s *server) suiteOptions(req jobRequest) (rtrbench.SuiteOptions, error) {
	opts := rtrbench.SuiteOptions{
		Options: rtrbench.Options{
			Seed:        req.Seed,
			Deadline:    time.Duration(req.Deadline),
			StepLatency: req.StepLatency,
			Workers:     req.Workers,
		},
		Kernels:         req.Kernels,
		Parallel:        s.cfg.parallel,
		Trials:          req.Trials,
		Warmup:          req.Warmup,
		Timeout:         time.Duration(req.Timeout),
		ContinueOnError: req.ContinueOnError,
		Retries:         req.Retries,
		RetryBackoff:    time.Duration(req.RetryBackoff),
	}
	switch req.Size {
	case "", "small":
		opts.Size = rtrbench.SizeSmall
	case "default":
		opts.Size = rtrbench.SizeDefault
	default:
		return opts, fmt.Errorf("unknown size %q (want small or default)", req.Size)
	}
	seen := map[string]bool{}
	for _, name := range req.Kernels {
		if _, ok := rtrbench.Lookup(name); !ok {
			return opts, fmt.Errorf("unknown kernel %q", name)
		}
		if seen[name] {
			return opts, fmt.Errorf("kernel %q listed twice", name)
		}
		seen[name] = true
	}
	return opts.Normalize()
}

// requestKey canonicalizes normalized options into the result-cache
// identity. Parallel is erased first: trial t always runs with seed base+t,
// so execution concurrency cannot change the answer and must not split the
// cache.
func requestKey(opts rtrbench.SuiteOptions) (string, error) {
	opts.Parallel = 0
	b, err := json.Marshal(opts)
	if err != nil {
		return "", fmt.Errorf("request key: %w", err)
	}
	return string(b), nil
}

// execBatch is the queue executor: it runs each job of a dispatched batch
// on the shared engine, serializes the outcome, and feeds clean runs into
// the content-addressed store.
func (s *server) execBatch(ctx context.Context, batch []*jobqueue.Job[*jobRecord, jobOutcome]) {
	for _, j := range batch {
		rec := j.Req
		if rec.stream != nil {
			s.execStream(ctx, j)
			continue
		}
		res, err := s.engine.Run(ctx, rec.opts)
		if err != nil {
			j.Finish(jobOutcome{}, err)
			s.reg.Add("jobs_failed", 1)
			continue
		}
		doc, digest, err := s.document(rec, res)
		if err != nil {
			j.Finish(jobOutcome{}, err)
			s.reg.Add("jobs_failed", 1)
			continue
		}
		// Only clean sweeps enter the cache: a failed kernel's digest does
		// not name an answer, and a repeat submission deserves a fresh run.
		if len(res.Failures()) == 0 {
			if st := s.getStore(); st != nil {
				// A WAL append failure degrades durability, not service:
				// the result is in memory and returned to the client, it
				// just may not survive a crash.
				if perr := st.Put(rec.reqKey, digest, doc); perr != nil {
					s.reg.Add("wal_append_errors", 1)
					log.Printf("wal: %v", perr)
				}
				if wal := s.wal.Load(); wal != nil {
					s.reg.SetGauge("wal_segments", int64(wal.Segments()))
				}
			}
			s.publishStoreGauges()
		}
		j.Finish(jobOutcome{digest: digest, doc: doc}, nil)
		s.reg.Add("jobs_completed", 1)
	}
}

// execStream runs one streaming job. The live registry is the server's, so
// /metrics shows rtrbench_stream_* advancing while the job runs; the result
// document reuses the report/v1 stream block and is never cached.
func (s *server) execStream(ctx context.Context, j *jobqueue.Job[*jobRecord, jobOutcome]) {
	opts := *j.Req.stream
	opts.Live = s.reg
	res, err := rtrbench.Stream(ctx, opts)
	if err != nil {
		j.Finish(jobOutcome{}, err)
		s.reg.Add("jobs_failed", 1)
		return
	}
	jd := jobDocument{
		Schema:         "rtrbenchd.job/v1",
		ElapsedSeconds: res.Stream.Elapsed.Seconds(),
		Kernels:        []obs.KernelReport{report.Stream(res)},
	}
	doc, err := json.Marshal(jd)
	if err != nil {
		j.Finish(jobOutcome{}, err)
		s.reg.Add("jobs_failed", 1)
		return
	}
	j.Finish(jobOutcome{doc: doc}, nil)
	s.reg.Add("jobs_completed", 1)
	s.reg.Add("stream_jobs_completed", 1)
}

// jobDocument is the stored/returned result of one job, schema
// "rtrbenchd.job/v1". Kernels reuse the rtrbench.report/v1 entries the CLI
// emits, so a job result and an offline report are the same shape.
type jobDocument struct {
	Schema         string             `json:"schema"`
	Digest         string             `json:"digest"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Kernels        []obs.KernelReport `json:"kernels"`
	Failures       []docFailure       `json:"failures,omitempty"`
}

type docFailure struct {
	Kernel string `json:"kernel"`
	Trial  int    `json:"trial"`
	Fault  string `json:"fault,omitempty"`
	Error  string `json:"error"`
}

// document serializes a finished sweep and computes its content address.
func (s *server) document(rec *jobRecord, res rtrbench.SuiteResult) (doc []byte, digest string, err error) {
	digest, err = suiteDigest(res, rec.opts.Seed)
	if err != nil {
		return nil, "", err
	}
	jd := jobDocument{
		Schema:         "rtrbenchd.job/v1",
		Digest:         digest,
		ElapsedSeconds: res.Elapsed.Seconds(),
		Kernels:        report.Suite(res),
	}
	for _, f := range res.Failures() {
		jd.Failures = append(jd.Failures, docFailure{
			Kernel: f.Kernel, Trial: f.Trial, Fault: f.Fault, Error: f.Err.Error(),
		})
	}
	doc, err = json.Marshal(jd)
	if err != nil {
		return nil, "", err
	}
	return doc, digest, nil
}

// suiteDigest folds the per-kernel golden digests into one job-level
// content address: a golden digest whose fields are the kernel sums. Like
// every golden digest it carries no wall-clock quantities, so two runs of
// the same request collide exactly when they computed the same answers.
func suiteDigest(res rtrbench.SuiteResult, seed int64) (string, error) {
	d := golden.Digest{Kernel: "rtrbenchd.job", Seed: seed}
	for _, k := range res.Kernels {
		if k.Err != nil {
			d.Fields = append(d.Fields, golden.Field{Name: k.Info.Name, Value: "error"})
			continue
		}
		sum, err := rtrbench.DigestSum(k.Result, seed)
		if err != nil {
			return "", err
		}
		d.Fields = append(d.Fields, golden.Field{Name: k.Info.Name, Value: sum})
	}
	golden.SortFields(d.Fields)
	return golden.Sum(d)
}

// clientID identifies the submitting tenant for fair queueing: the
// X-Client-ID header, or "anonymous" for clients that don't send one (they
// all share one fairness bucket).
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		return id
	}
	return "anonymous"
}

// handleSubmit is POST /v1/jobs: validate, consult the result cache, and
// either answer from the store (200, no execution) or admit to the queue
// (202). A full queue or an over-rate client is 429 (with Retry-After for
// the latter), a draining or still-recovering server 503 — typed
// backpressure, not timeouts.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	st := s.getStore()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "server is recovering, not ready")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	rec := &jobRecord{}
	if req.Stream != nil {
		sopts, err := s.streamOptions(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rec.stream = &sopts
	} else {
		opts, err := s.suiteOptions(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		key, err := requestKey(opts)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rec.reqKey, rec.opts = key, opts
	}
	status := http.StatusAccepted
	// Stream jobs never answer from (or enter) the result cache: their
	// accounting is a live measurement.
	if digest, doc, ok := st.Lookup(rec.reqKey); ok && rec.stream == nil {
		rec.cached, rec.cachedAt, rec.digest, rec.doc = true, time.Now(), digest, doc
		s.reg.Add("jobs_cached", 1)
		status = http.StatusOK
	} else {
		job, err := s.queue.SubmitClient(clientID(r), rec)
		var rl *jobqueue.RateLimitError
		switch {
		case errors.As(err, &rl):
			s.publishStoreGauges()
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(rl.RetryAfter.Seconds()))))
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		case errors.Is(err, jobqueue.ErrQueueFull):
			s.publishStoreGauges()
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		case errors.Is(err, jobqueue.ErrDraining):
			s.publishStoreGauges()
			httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		case err != nil:
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		rec.job = job
	}
	s.publishStoreGauges()
	s.register(rec)
	s.reg.Add("jobs_submitted", 1)
	writeJSON(w, status, s.view(rec))
}

// handleJob is GET /v1/jobs/{id}, optionally blocking via ?wait=DURATION
// until the job finishes (or the wait expires — the poll then reports the
// current state, it is not an error).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	rec, ok := s.jobs[id]
	digest, evicted := s.tombstones[id]
	s.mu.Unlock()
	if !ok {
		if evicted && digest != "" {
			// The job record aged out of the bounded index but its answer is
			// still content-addressed: point the client at the result.
			writeJSON(w, http.StatusNotFound, map[string]string{
				"error":  fmt.Sprintf("job %q evicted from the index; its result is still addressable", id),
				"digest": digest,
				"result": "/v1/results/" + digest,
			})
			return
		}
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if ws := r.URL.Query().Get("wait"); ws != "" && !rec.cached {
		d, err := time.ParseDuration(ws)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait %q: %v", ws, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		select {
		case <-rec.job.DoneCh():
		case <-ctx.Done():
		}
		cancel()
	}
	writeJSON(w, http.StatusOK, s.view(rec))
}

// handleResult is GET /v1/results/{digest}: the content-addressed read
// path. Any client holding a digest — from a job view, a stored report, a
// teammate — fetches the document it names, no job ID required.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.getStore()
	if st == nil {
		httpError(w, http.StatusServiceUnavailable, "server is recovering, not ready")
		return
	}
	digest := strings.TrimPrefix(r.URL.Path, "/v1/results/")
	doc, ok := st.Get(digest)
	if !ok {
		httpError(w, http.StatusNotFound, "no result for digest %q", digest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

// jobView is the JSON the job endpoints return: state, per-stage
// timestamps, batch attribution, and (when finished) the digest and result
// document.
type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Digest string `json:"digest,omitempty"`
	Error  string `json:"error,omitempty"`
	// Attempts counts executor dispatches of this job so far; a value
	// above 1 means the watchdog or a transient failure forced retries.
	Attempts int `json:"attempts,omitempty"`
	// Batch and BatchSize attribute the job to its flush: jobs sharing a
	// batch number were coalesced into one dispatch.
	Batch     int             `json:"batch,omitempty"`
	BatchSize int             `json:"batch_size,omitempty"`
	Enqueued  string          `json:"enqueued_at,omitempty"`
	Started   string          `json:"started_at,omitempty"`
	Done      string          `json:"done_at,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

func (s *server) view(rec *jobRecord) jobView {
	v := jobView{ID: rec.id}
	if rec.cached {
		v.State, v.Cached = "done", true
		v.Digest, v.Result = rec.digest, rec.doc
		return v
	}
	t := rec.job.Times()
	v.Enqueued, v.Started, v.Done = stamp(t.Enqueued), stamp(t.Started), stamp(t.Done)
	v.Batch, v.BatchSize = rec.job.Batch()
	v.Attempts = rec.job.Attempts()
	switch {
	case rec.job.Finished():
		out, err := rec.job.Result()
		if err != nil {
			v.State, v.Error = "failed", err.Error()
		} else {
			v.State, v.Digest, v.Result = "done", out.digest, out.doc
		}
	case rec.job.Retrying():
		v.State = "retrying"
	case !t.Started.IsZero():
		v.State = "running"
	default:
		v.State = "queued"
	}
	return v
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}

// register assigns the job its ID and indexes it for polling, evicting
// over-cap terminal records so the index stays bounded even between
// sweeper ticks.
func (s *server) register(rec *jobRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	rec.id = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[rec.id] = rec
	s.evictLocked(time.Now())
}

// sweepLoop periodically evicts expired terminal jobs so an idle daemon's
// index shrinks without waiting for the next submission.
func (s *server) sweepLoop() {
	defer close(s.sweepDone)
	ival := s.cfg.jobTTL / 4
	if ival > 30*time.Second {
		ival = 30 * time.Second
	}
	if ival < time.Second {
		ival = time.Second
	}
	t := time.NewTicker(ival)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			s.evictLocked(time.Now())
			s.mu.Unlock()
		case <-s.sweepStop:
			return
		}
	}
}

// evictLocked enforces the job-index bound: terminal jobs past their TTL
// go first, then — if the index still exceeds jobIndexMax — the oldest
// terminal jobs until it fits. Live jobs are never evicted (the index may
// transiently exceed the cap if every record is live, which the queue's
// own capacity bounds). Evicted jobs leave a digest tombstone so a late
// poll is redirected to the content-addressed result instead of a bare
// 404. Callers hold s.mu.
func (s *server) evictLocked(now time.Time) {
	type done struct {
		id string
		at time.Time
	}
	var terminal []done
	for id, rec := range s.jobs {
		if at := rec.terminalAt(); !at.IsZero() {
			if now.Sub(at) > s.cfg.jobTTL {
				s.entombLocked(id, rec)
				continue
			}
			terminal = append(terminal, done{id, at})
		}
	}
	if over := len(s.jobs) - s.cfg.jobIndexMax; over > 0 {
		sort.Slice(terminal, func(i, j int) bool { return terminal[i].at.Before(terminal[j].at) })
		for i := 0; i < len(terminal) && over > 0; i, over = i+1, over-1 {
			s.entombLocked(terminal[i].id, s.jobs[terminal[i].id])
		}
	}
	s.reg.SetGauge("job_index_size", int64(len(s.jobs)))
}

// entombLocked drops a job record, leaving a bounded digest tombstone.
// Callers hold s.mu.
func (s *server) entombLocked(id string, rec *jobRecord) {
	delete(s.jobs, id)
	s.tombstones[id] = rec.terminalDigest()
	s.tombOrder = append(s.tombOrder, id)
	for len(s.tombOrder) > s.cfg.jobIndexMax {
		delete(s.tombstones, s.tombOrder[0])
		s.tombOrder = s.tombOrder[1:]
	}
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is the readiness probe: 200 only when the result store has
// finished recovering and the server is not draining, so load balancers
// and restart scripts know when to send traffic (and when to stop).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]interface{}{
		"ready":    s.ready.Load() && !s.draining.Load(),
		"draining": s.draining.Load(),
		"replaying": !s.ready.Load() && s.recoverErr.Load() == nil &&
			s.cfg.dataDir != "",
	}
	if errp := s.recoverErr.Load(); errp != nil {
		body["recovery_error"] = *errp
	}
	status := http.StatusOK
	if ready, _ := body["ready"].(bool); !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// publishStoreGauges mirrors the result-store statistics into the metrics
// registry (a no-op while the store is still recovering).
func (s *server) publishStoreGauges() {
	st := s.getStore()
	if st == nil {
		return
	}
	hits, misses, entries := st.Stats()
	s.reg.SetGauge("result_cache_hits", hits)
	s.reg.SetGauge("result_cache_misses", misses)
	s.reg.SetGauge("result_cache_entries", int64(entries))
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
