package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/rtrbench"
)

// newTestServer starts a server on a free port and tears it down with the
// test. Mutate cfg before the first request via the returned server.
func newTestServer(t *testing.T, cfg config) *server {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.ledgerPath == "" {
		cfg.ledgerPath = t.TempDir() + "/ledger.jsonl" // missing file: empty chain
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func postJob(t *testing.T, url string, body string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v jobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job view %s: %v", raw, err)
		}
	}
	return resp.StatusCode, v
}

func getJob(t *testing.T, url, id, wait string) jobView {
	t.Helper()
	u := url + "/v1/jobs/" + id
	if wait != "" {
		u += "?wait=" + wait
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", u, resp.StatusCode, raw)
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad job view %s: %v", raw, err)
	}
	return v
}

func jsonEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := json.Compact(&cb, b); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestJobLifecycleAndResultCache is the service round trip: submit, poll to
// completion, fetch by content address, and observe the repeat submission
// served from the store without re-execution.
func TestJobLifecycleAndResultCache(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1, parallel: 2, cacheEntries: 8})
	req := `{"kernels":["dmp"],"trials":1,"seed":7}`

	status, v := postJob(t, s.debug.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if v.ID == "" || v.Cached {
		t.Fatalf("submit view = %+v", v)
	}

	v = getJob(t, s.debug.URL, v.ID, "30s")
	if v.State != "done" || v.Digest == "" || len(v.Result) == 0 {
		t.Fatalf("finished view = %+v", v)
	}
	if v.Enqueued == "" || v.Started == "" || v.Done == "" {
		t.Fatalf("missing stage timestamps: %+v", v)
	}
	var doc jobDocument
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatalf("bad result document: %v", err)
	}
	if doc.Schema != "rtrbenchd.job/v1" || doc.Digest != v.Digest {
		t.Fatalf("document = schema %q digest %q, view digest %q", doc.Schema, doc.Digest, v.Digest)
	}
	if len(doc.Kernels) != 1 || doc.Kernels[0].Kernel != "dmp" {
		t.Fatalf("document kernels = %+v", doc.Kernels)
	}

	// Content-addressed read path: the digest alone fetches the document
	// (byte layouts differ — the view re-indents — so compare canonically).
	code, raw := getBody(t, s.debug.URL+"/v1/results/"+v.Digest)
	if code != http.StatusOK || !jsonEqual(t, raw, v.Result) {
		t.Fatalf("GET /v1/results/%s = %d, body %s != job result", v.Digest, code, raw)
	}
	if code, _ := getBody(t, s.debug.URL+"/v1/results/nonexistent"); code != http.StatusNotFound {
		t.Fatalf("bogus digest = %d, want 404", code)
	}

	// Repeat submission: answered from the store, no queue, same digest.
	status, hit := postJob(t, s.debug.URL, req)
	if status != http.StatusOK || !hit.Cached || hit.State != "done" || hit.Digest != v.Digest {
		t.Fatalf("repeat submit = %d %+v, want cached hit with digest %s", status, hit, v.Digest)
	}

	code, metrics := getBody(t, s.debug.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"rtrbench_queue_depth 0",
		"rtrbench_result_cache_hits 1",
		"rtrbench_result_cache_entries 1",
		"rtrbench_jobs_submitted 2",
		"rtrbench_jobs_cached 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestBatchCoalescing: concurrent submissions under a large max-wait are
// dispatched as one batch, observable through the per-job batch attribution.
func TestBatchCoalescing(t *testing.T) {
	s := newTestServer(t, config{batchSize: 3, maxWait: 10 * time.Second, capacity: 16, workers: 1, parallel: 2, cacheEntries: 8})

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, 100+i))
			if status != http.StatusAccepted {
				t.Errorf("submit %d = %d", i, status)
				return
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(ids) != 3 {
		t.Fatalf("admitted %d jobs, want 3", len(ids))
	}

	batches := map[int]bool{}
	digests := map[string]bool{}
	for _, id := range ids {
		v := getJob(t, s.debug.URL, id, "30s")
		if v.State != "done" {
			t.Fatalf("job %s = %+v", id, v)
		}
		if v.BatchSize != 3 {
			t.Errorf("job %s batch_size = %d, want 3 (coalesced)", id, v.BatchSize)
		}
		batches[v.Batch] = true
		digests[v.Digest] = true
	}
	if len(batches) != 1 {
		t.Errorf("jobs spread over %d batches, want 1", len(batches))
	}
	if len(digests) != 3 {
		t.Errorf("distinct seeds produced %d digests, want 3", len(digests))
	}
}

// TestBackpressureQueueFull wedges the single worker by blocking the
// engine's profile hook, fills the admission buffer behind it, and checks
// the typed rejection maps to 429. Deterministic: the collector is blocked
// handing off batch 2, so batches never drain while the hook is held.
func TestBackpressureQueueFull(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 2, workers: 1, parallel: 2, cacheEntries: 8})
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	s.engine.NewProfile = func(rtrbench.Options) *profile.Profile {
		<-block
		return profile.Disabled()
	}

	var ids []string
	submit := func(seed int) int {
		status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, seed))
		if v.ID != "" {
			ids = append(ids, v.ID)
		}
		return status
	}

	// Job 1 dispatches and wedges the worker; job 2 dispatches and wedges
	// the collector on the handoff. Wait for both flushes before filling
	// the buffer, so admission capacity is exactly the channel bound.
	if st := submit(1); st != http.StatusAccepted {
		t.Fatalf("job 1 = %d", st)
	}
	if st := submit(2); st != http.StatusAccepted {
		t.Fatalf("job 2 = %d", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, m := getBody(t, s.debug.URL+"/metrics"); strings.Contains(string(m), "rtrbench_batches 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batches gauge never reached 2")
		}
		time.Sleep(time.Millisecond)
	}
	if st := submit(3); st != http.StatusAccepted {
		t.Fatalf("job 3 = %d", st)
	}
	if st := submit(4); st != http.StatusAccepted {
		t.Fatalf("job 4 = %d", st)
	}
	if st := submit(5); st != http.StatusTooManyRequests {
		t.Fatalf("job 5 = %d, want 429 (queue full)", st)
	}

	release()
	for _, id := range ids {
		if v := getJob(t, s.debug.URL, id, "30s"); v.State != "done" {
			t.Errorf("job %s = %+v after release", id, v)
		}
	}
}

// TestGracefulDrain: draining rejects new submissions with 503 while
// admitted jobs run to completion — and cache hits still answer 200,
// because the store needs no queue.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 16, workers: 1, parallel: 2, cacheEntries: 8})
	warm := `{"kernels":["dmp"],"seed":42}`
	if status, v := postJob(t, s.debug.URL, warm); status != http.StatusAccepted {
		t.Fatalf("warm submit = %d", status)
	} else if v := getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" {
		t.Fatalf("warm job = %+v", v)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drained <- s.queue.Drain(ctx)
	}()

	// Submissions racing the drain flag are admitted (the drain then waits
	// for them too); eventually one observes draining and gets 503.
	var admitted []string
	saw503 := false
	for i := 0; i < 10000 && !saw503; i++ {
		status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, 1000+i))
		switch status {
		case http.StatusAccepted:
			admitted = append(admitted, v.ID)
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("submit during drain = %d", status)
		}
	}
	if !saw503 {
		t.Fatal("never saw 503 while draining")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every job admitted before the flag flipped completed: nothing lost.
	for _, id := range admitted {
		if v := getJob(t, s.debug.URL, id, ""); v.State != "done" {
			t.Errorf("admitted job %s = %q after drain, want done", id, v.State)
		}
	}
	// The content-addressed store outlives the queue: a repeat of the warm
	// request is still a 200 cache hit on a drained server.
	if status, v := postJob(t, s.debug.URL, warm); status != http.StatusOK || !v.Cached {
		t.Errorf("cached submit on drained server = %d %+v, want 200 cached", status, v)
	}
}

// TestAdmissionValidation: a malformed request is a 400 at the door, never
// a failed job.
func TestAdmissionValidation(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 4, workers: 1, parallel: 2, cacheEntries: 4})
	for _, body := range []string{
		`{"kernels":["nosuch"]}`,
		`{"size":"huge"}`,
		`{"trials":1,"warmup":-1}`,
		`{"kernels":["dmp","dmp"]}`,
		`{"bogus_field":1}`,
		`not json`,
	} {
		if status, _ := postJob(t, s.debug.URL, body); status != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", body, status)
		}
	}
}
