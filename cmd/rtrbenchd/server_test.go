package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/rtrbench"
)

// newTestServer starts a server on a free port and tears it down with the
// test. Mutate cfg before the first request via the returned server.
func newTestServer(t *testing.T, cfg config) *server {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.ledgerPath == "" {
		cfg.ledgerPath = t.TempDir() + "/ledger.jsonl" // missing file: empty chain
	}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s
}

func postJob(t *testing.T, url string, body string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v jobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job view %s: %v", raw, err)
		}
	}
	return resp.StatusCode, v
}

func getJob(t *testing.T, url, id, wait string) jobView {
	t.Helper()
	u := url + "/v1/jobs/" + id
	if wait != "" {
		u += "?wait=" + wait
	}
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", u, resp.StatusCode, raw)
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad job view %s: %v", raw, err)
	}
	return v
}

func jsonEqual(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := json.Compact(&cb, b); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestJobLifecycleAndResultCache is the service round trip: submit, poll to
// completion, fetch by content address, and observe the repeat submission
// served from the store without re-execution.
func TestJobLifecycleAndResultCache(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1, parallel: 2, cacheEntries: 8})
	req := `{"kernels":["dmp"],"trials":1,"seed":7}`

	status, v := postJob(t, s.debug.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if v.ID == "" || v.Cached {
		t.Fatalf("submit view = %+v", v)
	}

	v = getJob(t, s.debug.URL, v.ID, "30s")
	if v.State != "done" || v.Digest == "" || len(v.Result) == 0 {
		t.Fatalf("finished view = %+v", v)
	}
	if v.Enqueued == "" || v.Started == "" || v.Done == "" {
		t.Fatalf("missing stage timestamps: %+v", v)
	}
	var doc jobDocument
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatalf("bad result document: %v", err)
	}
	if doc.Schema != "rtrbenchd.job/v1" || doc.Digest != v.Digest {
		t.Fatalf("document = schema %q digest %q, view digest %q", doc.Schema, doc.Digest, v.Digest)
	}
	if len(doc.Kernels) != 1 || doc.Kernels[0].Kernel != "dmp" {
		t.Fatalf("document kernels = %+v", doc.Kernels)
	}

	// Content-addressed read path: the digest alone fetches the document
	// (byte layouts differ — the view re-indents — so compare canonically).
	code, raw := getBody(t, s.debug.URL+"/v1/results/"+v.Digest)
	if code != http.StatusOK || !jsonEqual(t, raw, v.Result) {
		t.Fatalf("GET /v1/results/%s = %d, body %s != job result", v.Digest, code, raw)
	}
	if code, _ := getBody(t, s.debug.URL+"/v1/results/nonexistent"); code != http.StatusNotFound {
		t.Fatalf("bogus digest = %d, want 404", code)
	}

	// Repeat submission: answered from the store, no queue, same digest.
	status, hit := postJob(t, s.debug.URL, req)
	if status != http.StatusOK || !hit.Cached || hit.State != "done" || hit.Digest != v.Digest {
		t.Fatalf("repeat submit = %d %+v, want cached hit with digest %s", status, hit, v.Digest)
	}

	code, metrics := getBody(t, s.debug.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"rtrbench_queue_depth 0",
		"rtrbench_result_cache_hits 1",
		"rtrbench_result_cache_entries 1",
		"rtrbench_jobs_submitted 2",
		"rtrbench_jobs_cached 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestBatchCoalescing: concurrent submissions under a large max-wait are
// dispatched as one batch, observable through the per-job batch attribution.
func TestBatchCoalescing(t *testing.T) {
	s := newTestServer(t, config{batchSize: 3, maxWait: 10 * time.Second, capacity: 16, workers: 1, parallel: 2, cacheEntries: 8})

	var mu sync.Mutex
	var ids []string
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, 100+i))
			if status != http.StatusAccepted {
				t.Errorf("submit %d = %d", i, status)
				return
			}
			mu.Lock()
			ids = append(ids, v.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(ids) != 3 {
		t.Fatalf("admitted %d jobs, want 3", len(ids))
	}

	batches := map[int]bool{}
	digests := map[string]bool{}
	for _, id := range ids {
		v := getJob(t, s.debug.URL, id, "30s")
		if v.State != "done" {
			t.Fatalf("job %s = %+v", id, v)
		}
		if v.BatchSize != 3 {
			t.Errorf("job %s batch_size = %d, want 3 (coalesced)", id, v.BatchSize)
		}
		batches[v.Batch] = true
		digests[v.Digest] = true
	}
	if len(batches) != 1 {
		t.Errorf("jobs spread over %d batches, want 1", len(batches))
	}
	if len(digests) != 3 {
		t.Errorf("distinct seeds produced %d digests, want 3", len(digests))
	}
}

// TestBackpressureQueueFull wedges the single worker by blocking the
// engine's profile hook, fills the admission buffer behind it, and checks
// the typed rejection maps to 429. Deterministic: the collector is blocked
// handing off batch 2, so batches never drain while the hook is held.
func TestBackpressureQueueFull(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 2, workers: 1, parallel: 2, cacheEntries: 8})
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	s.engine.NewProfile = func(rtrbench.Options) *profile.Profile {
		<-block
		return profile.Disabled()
	}

	var ids []string
	submit := func(seed int) int {
		status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, seed))
		if v.ID != "" {
			ids = append(ids, v.ID)
		}
		return status
	}

	// Job 1 dispatches and wedges the worker; job 2 dispatches and wedges
	// the collector on the handoff. Wait for both flushes before filling
	// the buffer, so admission capacity is exactly the channel bound.
	if st := submit(1); st != http.StatusAccepted {
		t.Fatalf("job 1 = %d", st)
	}
	if st := submit(2); st != http.StatusAccepted {
		t.Fatalf("job 2 = %d", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, m := getBody(t, s.debug.URL+"/metrics"); strings.Contains(string(m), "rtrbench_batches 2") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batches gauge never reached 2")
		}
		time.Sleep(time.Millisecond)
	}
	if st := submit(3); st != http.StatusAccepted {
		t.Fatalf("job 3 = %d", st)
	}
	if st := submit(4); st != http.StatusAccepted {
		t.Fatalf("job 4 = %d", st)
	}
	if st := submit(5); st != http.StatusTooManyRequests {
		t.Fatalf("job 5 = %d, want 429 (queue full)", st)
	}

	release()
	for _, id := range ids {
		if v := getJob(t, s.debug.URL, id, "30s"); v.State != "done" {
			t.Errorf("job %s = %+v after release", id, v)
		}
	}
}

// TestGracefulDrain: draining rejects new submissions with 503 while
// admitted jobs run to completion — and cache hits still answer 200,
// because the store needs no queue.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 16, workers: 1, parallel: 2, cacheEntries: 8})
	warm := `{"kernels":["dmp"],"seed":42}`
	if status, v := postJob(t, s.debug.URL, warm); status != http.StatusAccepted {
		t.Fatalf("warm submit = %d", status)
	} else if v := getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" {
		t.Fatalf("warm job = %+v", v)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		drained <- s.queue.Drain(ctx)
	}()

	// Submissions racing the drain flag are admitted (the drain then waits
	// for them too); eventually one observes draining and gets 503.
	var admitted []string
	saw503 := false
	for i := 0; i < 10000 && !saw503; i++ {
		status, v := postJob(t, s.debug.URL, fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, 1000+i))
		switch status {
		case http.StatusAccepted:
			admitted = append(admitted, v.ID)
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("submit during drain = %d", status)
		}
	}
	if !saw503 {
		t.Fatal("never saw 503 while draining")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Every job admitted before the flag flipped completed: nothing lost.
	for _, id := range admitted {
		if v := getJob(t, s.debug.URL, id, ""); v.State != "done" {
			t.Errorf("admitted job %s = %q after drain, want done", id, v.State)
		}
	}
	// The content-addressed store outlives the queue: a repeat of the warm
	// request is still a 200 cache hit on a drained server.
	if status, v := postJob(t, s.debug.URL, warm); status != http.StatusOK || !v.Cached {
		t.Errorf("cached submit on drained server = %d %+v, want 200 cached", status, v)
	}
}

// TestAdmissionValidation: a malformed request is a 400 at the door, never
// a failed job.
func TestAdmissionValidation(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 4, workers: 1, parallel: 2, cacheEntries: 4})
	for _, body := range []string{
		`{"kernels":["nosuch"]}`,
		`{"size":"huge"}`,
		`{"trials":1,"warmup":-1}`,
		`{"kernels":["dmp","dmp"]}`,
		`{"bogus_field":1}`,
		`not json`,
	} {
		if status, _ := postJob(t, s.debug.URL, body); status != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", body, status)
		}
	}
}

// postJobAs submits with an X-Client-ID header and returns the status,
// view, and Retry-After header (empty when absent).
func postJobAs(t *testing.T, url, client, body string) (int, jobView, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var v jobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job view %s: %v", raw, err)
		}
	}
	return resp.StatusCode, v, resp.Header.Get("Retry-After")
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if code, _ := getBody(t, url+"/readyz"); code == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// crash simulates kill -9 for an in-process server: the listener closes
// and the WAL is abandoned mid-state — no drain, no snapshot, no fsync
// coordination — exactly what the durability layer must survive.
func crash(s *server) {
	_ = s.debug.Close()
	close(s.sweepStop)
}

// TestKillRestartCacheSurvives is the tentpole drill in-process: results
// cached before an abrupt crash are served as cache hits after a restart
// over the same data directory, same digest and all.
func TestKillRestartCacheSurvives(t *testing.T) {
	dataDir := t.TempDir()
	base := config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1,
		parallel: 2, cacheEntries: 8, dataDir: dataDir,
		ledgerPath: t.TempDir() + "/ledger.jsonl",
		addr:       "127.0.0.1:0",
	}
	s1, err := newServer(base)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, s1.debug.URL)
	req := `{"kernels":["dmp"],"trials":1,"seed":11}`
	status, v := postJob(t, s1.debug.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	v = getJob(t, s1.debug.URL, v.ID, "30s")
	if v.State != "done" || v.Digest == "" {
		t.Fatalf("job = %+v", v)
	}
	digest := v.Digest

	// kill -9: no drain, no snapshot, the WAL is whatever hit the disk.
	crash(s1)

	s2, err := newServer(base)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s2.shutdown(ctx)
	}()
	waitReady(t, s2.debug.URL)

	// The repeat submission is a cache hit — no re-execution — with the
	// same content address, and the digest read path serves the document.
	status, hit := postJob(t, s2.debug.URL, req)
	if status != http.StatusOK || !hit.Cached || hit.Digest != digest {
		t.Fatalf("post-restart submit = %d %+v, want cached hit with digest %s", status, hit, digest)
	}
	if code, _ := getBody(t, s2.debug.URL+"/v1/results/"+digest); code != http.StatusOK {
		t.Fatalf("post-restart GET result = %d", code)
	}
	if code, m := getBody(t, s2.debug.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(m), "rtrbench_wal_records_replayed 1") {
		t.Fatalf("metrics missing replay count:\n%s", m)
	}
}

// TestHealthAndReadiness: /healthz is always live; /readyz is 200 when
// serving and flips to 503 (draining) the moment shutdown begins, before
// in-flight work finishes — the load-balancer contract.
func TestHealthAndReadiness(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1, parallel: 2, cacheEntries: 8})
	if code, _ := getBody(t, s.debug.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	code, body := getBody(t, s.debug.URL+"/readyz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ready": true`) {
		t.Fatalf("/readyz = %d %s", code, body)
	}

	// Wedge the worker so the drain blocks, then observe readiness drop
	// while health stays up and polls still answer.
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	s.engine.NewProfile = func(rtrbench.Options) *profile.Profile {
		<-block
		return profile.Disabled()
	}
	status, v := postJob(t, s.debug.URL, `{"kernels":["dmp"],"seed":5}`)
	if status != http.StatusAccepted || v.ID == "" {
		t.Fatalf("submit = %d %+v", status, v)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		done <- s.shutdown(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = getBody(t, s.debug.URL+"/readyz")
		if code == http.StatusServiceUnavailable && strings.Contains(string(body), `"draining": true`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reported draining: %d %s", code, body)
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := getBody(t, s.debug.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d", code)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestPerClientFairness is the flooding-tenant drill: a client hammering
// the service hits its own rate limit (429 with a Retry-After hint) and
// its own queue share, while a well-behaved client's job is admitted and
// completes.
func TestPerClientFairness(t *testing.T) {
	s := newTestServer(t, config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 16, workers: 1,
		parallel: 2, cacheEntries: 16,
		clientRate: 0.1, clientBurst: 2, clientCapacity: 4,
	})

	// The flooder burns its burst and then some: 10 distinct requests as
	// fast as HTTP allows.
	floodAccepted, flood429 := 0, 0
	sawRetryAfter := ""
	for i := 0; i < 10; i++ {
		status, _, ra := postJobAs(t, s.debug.URL, "flood", fmt.Sprintf(`{"kernels":["dmp"],"seed":%d}`, 2000+i))
		switch status {
		case http.StatusAccepted:
			floodAccepted++
		case http.StatusTooManyRequests:
			flood429++
			if ra != "" {
				sawRetryAfter = ra
			}
		default:
			t.Fatalf("flood submit %d = %d", i, status)
		}
	}
	if floodAccepted != 2 || flood429 != 8 {
		t.Fatalf("flooder admitted %d / rejected %d, want 2 / 8 (burst 2)", floodAccepted, flood429)
	}
	if sawRetryAfter == "" {
		t.Fatal("429 responses never carried Retry-After")
	}

	// The slow client is untouched by the flooder's bucket and completes.
	status, v, _ := postJobAs(t, s.debug.URL, "slow", `{"kernels":["dmp"],"seed":3000}`)
	if status != http.StatusAccepted {
		t.Fatalf("slow submit = %d, want 202", status)
	}
	if v = getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" {
		t.Fatalf("slow job = %+v", v)
	}
	if code, m := getBody(t, s.debug.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(m), "rtrbench_rate_limited 8") {
		t.Fatalf("metrics missing rate_limited counter:\n%s", m)
	}
}

// TestWatchdogWedgedExecutorFailsTerminally wedges the engine via the
// profile hook — it never returns, ignoring cancellation — and watches
// the watchdog cancel it, retry it, and fail the job terminally with the
// attempt count surfaced in the job view. The daemon survives: a healthy
// job afterwards completes normally.
func TestWatchdogWedgedExecutorFailsTerminally(t *testing.T) {
	s := newTestServer(t, config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1,
		parallel: 2, cacheEntries: 8,
		jobTimeout: 100 * time.Millisecond, abandonGrace: 50 * time.Millisecond,
		maxAttempts: 2, retryBackoff: 10 * time.Millisecond,
	})
	block := make(chan struct{})
	var wedged atomic.Int32
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	s.engine.NewProfile = func(rtrbench.Options) *profile.Profile {
		wedged.Add(1)
		<-block // ignores cancellation entirely: the executor is wedged
		return profile.Disabled()
	}

	status, v := postJob(t, s.debug.URL, `{"kernels":["dmp"],"seed":9}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	v = getJob(t, s.debug.URL, v.ID, "30s")
	if v.State != "failed" {
		t.Fatalf("wedged job state = %q (%+v), want failed", v.State, v)
	}
	if v.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (dispatched, watchdogged, retried, watchdogged)", v.Attempts)
	}
	if !strings.Contains(v.Error, "after 2 attempt(s)") {
		t.Fatalf("error %q does not carry the attempt count", v.Error)
	}
	if got := wedged.Load(); got != 2 {
		t.Fatalf("executor wedged %d times, want 2", got)
	}

	// The worker slot was reclaimed both times: a healthy job completes.
	s.engine.NewProfile = nil
	status, v = postJob(t, s.debug.URL, `{"kernels":["dmp"],"seed":10}`)
	if status != http.StatusAccepted {
		t.Fatalf("healthy submit = %d", status)
	}
	if v = getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" || v.Attempts != 1 {
		t.Fatalf("healthy job = %+v, want done in 1 attempt", v)
	}
	if code, m := getBody(t, s.debug.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(string(m), "rtrbench_executors_abandoned 2") ||
		!strings.Contains(string(m), "rtrbench_retries_scheduled 1") {
		t.Fatalf("metrics missing watchdog counters:\n%s", m)
	}
}

// TestJobIndexEviction: terminal jobs age out of the bounded index, and a
// poll for an evicted job is a 404 carrying the digest pointer, not a
// dead end — the result itself stays content-addressed in the store.
func TestJobIndexEviction(t *testing.T) {
	s := newTestServer(t, config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1,
		parallel: 2, cacheEntries: 8,
		jobTTL: 50 * time.Millisecond, jobIndexMax: 64,
	})
	status, v := postJob(t, s.debug.URL, `{"kernels":["dmp"],"seed":21}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d", status)
	}
	v = getJob(t, s.debug.URL, v.ID, "30s")
	if v.State != "done" {
		t.Fatalf("job = %+v", v)
	}
	evictedID, digest := v.ID, v.Digest

	// Age the record past its TTL; the next registration sweeps it out.
	time.Sleep(80 * time.Millisecond)
	if status, _ = postJob(t, s.debug.URL, `{"kernels":["dmp"],"seed":22}`); status != http.StatusAccepted {
		t.Fatalf("second submit = %d", status)
	}

	code, raw := getBody(t, s.debug.URL+"/v1/jobs/"+evictedID)
	if code != http.StatusNotFound {
		t.Fatalf("evicted job poll = %d, want 404", code)
	}
	var tomb struct {
		Error  string `json:"error"`
		Digest string `json:"digest"`
		Result string `json:"result"`
	}
	if err := json.Unmarshal(raw, &tomb); err != nil || tomb.Digest != digest {
		t.Fatalf("tombstone = %s (err %v), want digest %s", raw, err, digest)
	}
	if code, _ := getBody(t, s.debug.URL+tomb.Result); code != http.StatusOK {
		t.Fatalf("tombstone result pointer %s = %d, want 200", tomb.Result, code)
	}
	// A never-existing ID is still a plain 404.
	if code, raw := getBody(t, s.debug.URL+"/v1/jobs/j999999"); code != http.StatusNotFound ||
		strings.Contains(string(raw), "digest") {
		t.Fatalf("unknown job = %d %s, want bare 404", code, raw)
	}
}

// TestBodyLimit: a request body over -max-body is rejected, not buffered.
func TestBodyLimit(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 4, workers: 1, parallel: 2, cacheEntries: 4, maxBody: 256})
	big := fmt.Sprintf(`{"kernels":["dmp"],"seed":1,"size":"%s"}`, strings.Repeat("x", 1024))
	if status, _ := postJob(t, s.debug.URL, big); status != http.StatusBadRequest {
		t.Fatalf("oversized submit = %d, want 400", status)
	}
}

// TestWorkersCacheIdentity: the workers knob is part of a job's cache
// identity. A workers:8 submission after a workers:1 run must execute
// fresh (202), not be served the workers:1 document; repeats of each
// shape hit their own cache entry.
func TestWorkersCacheIdentity(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1, parallel: 2, cacheEntries: 8})
	req1 := `{"kernels":["dmp"],"seed":21,"workers":1}`
	req8 := `{"kernels":["dmp"],"seed":21,"workers":8}`

	status, v1 := postJob(t, s.debug.URL, req1)
	if status != http.StatusAccepted {
		t.Fatalf("workers:1 submit = %d, want 202", status)
	}
	if v1 = getJob(t, s.debug.URL, v1.ID, "30s"); v1.State != "done" {
		t.Fatalf("workers:1 job = %+v", v1)
	}

	status, v8 := postJob(t, s.debug.URL, req8)
	if status != http.StatusAccepted {
		t.Fatalf("workers:8 submit = %d, want 202 (must not hit the workers:1 cache entry)", status)
	}
	if v8.Cached {
		t.Fatalf("workers:8 submit served from cache: %+v", v8)
	}
	if v8 = getJob(t, s.debug.URL, v8.ID, "30s"); v8.State != "done" {
		t.Fatalf("workers:8 job = %+v", v8)
	}

	// Workers parallelism must not change the answer, only the cache key:
	// same kernels, same seed, same golden digest.
	if v1.Digest == "" || v1.Digest != v8.Digest {
		t.Fatalf("digests differ across workers shapes: %q vs %q", v1.Digest, v8.Digest)
	}

	for _, req := range []string{req1, req8} {
		if status, hit := postJob(t, s.debug.URL, req); status != http.StatusOK || !hit.Cached {
			t.Fatalf("repeat submit %s = %d %+v, want cached 200", req, status, hit)
		}
	}
}

// TestStreamJobEndToEnd: a streaming job runs through the daemon — 202 on
// submit, done with a stream block in the result document, no digest (the
// accounting is timing-dependent, so stream jobs are never content-
// addressed), and a re-submission executes fresh instead of hitting the
// cache. The shared live registry carries rtrbench_stream_* afterwards.
func TestStreamJobEndToEnd(t *testing.T) {
	s := newTestServer(t, config{batchSize: 1, maxWait: time.Millisecond, capacity: 8, workers: 1, parallel: 2, cacheEntries: 8})
	req := `{"seed":3,"stream":{"kernel":"dmp","period":"2ms","duration":"150ms","policy":"skip-next"}}`

	status, v := postJob(t, s.debug.URL, req)
	if status != http.StatusAccepted {
		t.Fatalf("stream submit = %d, want 202", status)
	}
	if v = getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" {
		t.Fatalf("stream job = %+v", v)
	}
	if v.Digest != "" {
		t.Fatalf("stream job carries digest %q, want none (stream results are not content-addressed)", v.Digest)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Kernels []struct {
			Kernel string `json:"kernel"`
			Stream *struct {
				Policy   string  `json:"policy"`
				Ticks    int64   `json:"ticks"`
				Misses   int64   `json:"misses"`
				MissRate float64 `json:"miss_rate"`
			} `json:"stream"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatalf("stream result %s: %v", v.Result, err)
	}
	if doc.Schema != "rtrbenchd.job/v1" || len(doc.Kernels) != 1 || doc.Kernels[0].Stream == nil {
		t.Fatalf("stream result shape = %s", v.Result)
	}
	st := doc.Kernels[0].Stream
	if doc.Kernels[0].Kernel != "dmp" || st.Policy != "skip-next" || st.Ticks < 1 ||
		st.MissRate < 0 || st.MissRate > 1 {
		t.Fatalf("stream accounting = %+v", st)
	}

	// The identical submission must run again — a cached answer for a
	// timing-dependent measurement would be a lie.
	status, v2 := postJob(t, s.debug.URL, req)
	if status != http.StatusAccepted || v2.Cached {
		t.Fatalf("stream resubmit = %d %+v, want fresh 202", status, v2)
	}
	if v2 = getJob(t, s.debug.URL, v2.ID, "30s"); v2.State != "done" {
		t.Fatalf("stream rerun = %+v", v2)
	}

	code, m := getBody(t, s.debug.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"rtrbench_stream_ticks ", "rtrbench_stream_jobs_completed 2"} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestStreamAdmissionValidation: malformed streaming submissions are 400s
// at admission, never queued — unbounded streams, streams outlasting the
// watchdog, unknown kernels, unknown policies, missing periods.
func TestStreamAdmissionValidation(t *testing.T) {
	s := newTestServer(t, config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 4, workers: 1,
		parallel: 2, cacheEntries: 4, jobTimeout: 5 * time.Second,
	})
	for _, body := range []string{
		`{"stream":{"kernel":"dmp","period":"2ms","max_ticks":100}}`,                     // no wall-time bound
		`{"stream":{"kernel":"dmp","period":"2ms","duration":"10s"}}`,                    // outlasts the watchdog
		`{"stream":{"kernel":"nosuch","period":"2ms","duration":"100ms"}}`,               // unknown kernel
		`{"stream":{"kernel":"dmp","period":"2ms","duration":"100ms","policy":"bogus"}}`, // unknown policy
		`{"stream":{"kernel":"dmp","duration":"100ms"}}`,                                 // missing period
	} {
		if status, _ := postJob(t, s.debug.URL, body); status != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400", body, status)
		}
	}
}

// TestPerClientLabeledMetrics: fairness counters carry the client label —
// alice's completed job shows under jobs_dequeued_by_client{client="alice"}
// and bob's over-burst submission under rate_limited_by_client{client="bob"}.
func TestPerClientLabeledMetrics(t *testing.T) {
	s := newTestServer(t, config{
		batchSize: 1, maxWait: time.Millisecond, capacity: 16, workers: 1,
		parallel: 2, cacheEntries: 16,
		clientRate: 0.1, clientBurst: 1, clientCapacity: 4,
	})
	status, v, _ := postJobAs(t, s.debug.URL, "alice", `{"kernels":["dmp"],"seed":4001}`)
	if status != http.StatusAccepted {
		t.Fatalf("alice submit = %d, want 202", status)
	}
	if v = getJob(t, s.debug.URL, v.ID, "30s"); v.State != "done" {
		t.Fatalf("alice job = %+v", v)
	}

	if status, _, _ := postJobAs(t, s.debug.URL, "bob", `{"kernels":["dmp"],"seed":4002}`); status != http.StatusAccepted {
		t.Fatalf("bob first submit = %d, want 202", status)
	}
	if status, _, _ := postJobAs(t, s.debug.URL, "bob", `{"kernels":["dmp"],"seed":4003}`); status != http.StatusTooManyRequests {
		t.Fatalf("bob second submit = %d, want 429 (burst 1)", status)
	}

	code, m := getBody(t, s.debug.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`rtrbench_jobs_dequeued_by_client{client="alice"} 1`,
		`rtrbench_rate_limited_by_client{client="bob"} 1`,
	} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}
