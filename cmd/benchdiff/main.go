// Command benchdiff is the statistical regression gate over benchmark
// snapshots, and the CLI of the perf ledger.
//
// Snapshot comparison (the default mode):
//
//	benchdiff [flags] OLD.json NEW.json [MORE.json...]
//
// loads two or more rtrbench.bench snapshots (v1 or v2 — a v1 file reads
// as single-sample entries) and compares the first against the last with
// the Mann-Whitney U test per benchmark: a delta only counts as a
// regression when it is statistically significant (p < -alpha) AND larger
// than the -threshold noise floor. allocs/op is deterministic, so any
// increase flags without a significance test (this subsumes the old CI
// alloc gate); -zeroalloc additionally pins matching benchmarks to exactly
// 0 allocs/op. Exit status: 0 clean, 1 regression or verification
// failure, 2 usage error.
//
// Ledger mode (-ledger <verb>):
//
//	benchdiff -ledger append SNAPSHOT.json   verify chain, seal + append
//	benchdiff -ledger verify                 verify the whole hash chain
//	benchdiff -ledger show                   one line per entry
//	benchdiff -ledger diff                   compare the last two entries
//
// The ledger file (default PERF_LEDGER.jsonl, -ledger-file) is the
// hash-chained longitudinal history owned by internal/ledger.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/benchfmt"
	"repro/internal/ledger"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	threshold   float64
	alpha       float64
	jsonOut     bool
	allocs      bool
	ignoreShape bool
	zeroAlloc   string
	ledgerMode  string
	ledgerFile  string
	note        string
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.Float64Var(&cfg.threshold, "threshold", 5, "noise floor in percent: smaller deltas never flag")
	fs.Float64Var(&cfg.alpha, "alpha", 0.05, "significance level for the Mann-Whitney test")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the full report as JSON instead of the table")
	fs.BoolVar(&cfg.allocs, "allocs", true, "flag any allocs/op increase as a regression (deterministic, no significance test)")
	fs.BoolVar(&cfg.ignoreShape, "ignore-shape", false, "compare snapshots even when GOMAXPROCS/NumCPU differ (cross-shape numbers are not comparable)")
	fs.StringVar(&cfg.zeroAlloc, "zeroalloc", "", "regexp of benchmarks that must report exactly 0 allocs/op in the new snapshot")
	fs.StringVar(&cfg.ledgerMode, "ledger", "", "ledger mode: append, verify, show, or diff")
	fs.StringVar(&cfg.ledgerFile, "ledger-file", "PERF_LEDGER.jsonl", "hash-chained ledger file")
	fs.StringVar(&cfg.note, "note", "", "annotation stored with -ledger append")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var err error
	var failed bool
	switch cfg.ledgerMode {
	case "":
		failed, err = diffFiles(cfg, fs.Args(), stdout)
	case "append":
		err = ledgerAppend(cfg, fs.Args(), stdout)
	case "verify":
		err = ledgerVerify(cfg, stdout)
	case "show":
		err = ledgerShow(cfg, stdout)
	case "diff":
		failed, err = ledgerDiff(cfg, stdout)
	default:
		fmt.Fprintf(stderr, "benchdiff: unknown -ledger mode %q (want append, verify, show, or diff)\n", cfg.ledgerMode)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}

func (c config) diffOptions() benchfmt.DiffOptions {
	return benchfmt.DiffOptions{
		Stats:       stats.Options{Alpha: c.alpha, Threshold: c.threshold},
		Allocs:      c.allocs,
		IgnoreShape: c.ignoreShape,
	}
}

// diffFiles compares the first snapshot argument against the last and
// reports whether the gate failed.
func diffFiles(cfg config, paths []string, stdout *os.File) (failed bool, err error) {
	if len(paths) < 2 {
		return false, fmt.Errorf("need at least two snapshot files (got %d)", len(paths))
	}
	snaps := make([]benchfmt.Snapshot, len(paths))
	for i, p := range paths {
		if snaps[i], err = benchfmt.Load(p); err != nil {
			return false, err
		}
	}
	return diffSnapshots(cfg, snaps[0], snaps[len(snaps)-1], stdout)
}

func diffSnapshots(cfg config, old, new benchfmt.Snapshot, stdout *os.File) (failed bool, err error) {
	rep, err := benchfmt.Diff(old, new, cfg.diffOptions())
	if err != nil {
		return false, err
	}
	zeroViolations, err := checkZeroAlloc(cfg.zeroAlloc, new)
	if err != nil {
		return false, err
	}

	if cfg.jsonOut {
		doc := struct {
			benchfmt.Report
			ZeroAllocViolations []string `json:"zero_alloc_violations,omitempty"`
		}{rep, zeroViolations}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return false, err
		}
	} else {
		printTable(stdout, rep)
		for _, name := range zeroViolations {
			fmt.Fprintf(stdout, "ZEROALLOC %s: allocs/op > 0 in new snapshot\n", name)
		}
	}

	regs := rep.Regressions()
	if !cfg.jsonOut {
		if len(regs) > 0 {
			fmt.Fprintf(stdout, "FAIL: %d regression(s) above %.3g%% (alpha %.3g)\n", len(regs), cfg.threshold, cfg.alpha)
		} else {
			fmt.Fprintf(stdout, "ok: no significant regressions (%d benchmark(s), threshold %.3g%%, alpha %.3g)\n",
				len(rep.Deltas), cfg.threshold, cfg.alpha)
		}
	}
	return len(regs) > 0 || len(zeroViolations) > 0, nil
}

// checkZeroAlloc returns the benchmarks matching pattern whose new-side
// samples report nonzero allocs/op. Matching benchmarks with no -benchmem
// data at all are violations too: the gate must not silently pass because
// allocation data went missing.
func checkZeroAlloc(pattern string, snap benchfmt.Snapshot) ([]string, error) {
	if pattern == "" {
		return nil, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, fmt.Errorf("-zeroalloc: %w", err)
	}
	var out []string
	matched := false
	for _, b := range snap.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched = true
		if max, ok := b.MaxAllocsOp(); !ok || max != 0 {
			out = append(out, b.Name)
		}
	}
	if !matched {
		return nil, fmt.Errorf("-zeroalloc %q matches no benchmark in the new snapshot", pattern)
	}
	return out, nil
}

func printTable(w *os.File, rep benchfmt.Report) {
	fmt.Fprintf(w, "%-44s %14s %14s %18s %8s  %s\n",
		"benchmark ("+rep.OldDate+" → "+rep.NewDate+")", "old ns/op", "new ns/op", "delta", "p", "")
	for _, d := range rep.Deltas {
		switch d.Verdict {
		case benchfmt.VerdictOnlyOld:
			fmt.Fprintf(w, "%-44s %14s %14s %18s %8s  (removed)\n", d.Name, fmtNs(d.Old.Median), "-", "-", "-")
			continue
		case benchfmt.VerdictOnlyNew:
			fmt.Fprintf(w, "%-44s %14s %14s %18s %8s  (new)\n", d.Name, "-", fmtNs(d.New.Median), "-", "-")
			continue
		}
		delta := fmt.Sprintf("%+.2f%%", d.Delta)
		if d.CI > 0 {
			delta += fmt.Sprintf(" ±%.2f%%", d.CI)
		}
		mark := "~"
		switch {
		case d.AllocRegression:
			mark = fmt.Sprintf("REGRESSION (allocs/op %d → %d)", d.OldAllocs, d.NewAllocs)
		case d.Verdict == benchfmt.VerdictRegression:
			mark = "REGRESSION"
		case d.Verdict == benchfmt.VerdictImprovement:
			mark = "improvement"
		}
		fmt.Fprintf(w, "%-44s %14s %14s %18s %8.3f  %s (n=%d/%d)\n",
			d.Name, fmtNs(d.Old.Median), fmtNs(d.New.Median), delta, d.P, mark, d.Old.N, d.New.N)
	}
}

// fmtNs renders a nanosecond latency with an SI-ish suffix for
// readability.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}

func ledgerAppend(cfg config, paths []string, stdout *os.File) error {
	if len(paths) != 1 {
		return fmt.Errorf("-ledger append takes exactly one snapshot file (got %d)", len(paths))
	}
	snap, err := benchfmt.Load(paths[0])
	if err != nil {
		return err
	}
	e, err := ledger.Append(cfg.ledgerFile, snap, cfg.note)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "appended entry %d (%s, %d benchmark(s), %d golden(s)) hash %.12s.. to %s\n",
		e.Index, e.Snapshot.Date, len(e.Snapshot.Benchmarks), len(e.Snapshot.Goldens), e.Hash, cfg.ledgerFile)
	return nil
}

func ledgerVerify(cfg config, stdout *os.File) error {
	entries, err := ledger.Load(cfg.ledgerFile)
	if err != nil {
		return err
	}
	if err := ledger.VerifyChain(entries); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ledger OK: %d entr%s, chain verified\n", len(entries), plural(len(entries), "y", "ies"))
	return nil
}

func ledgerShow(cfg config, stdout *os.File) error {
	entries, err := ledger.Load(cfg.ledgerFile)
	if err != nil {
		return err
	}
	chainErr := ledger.VerifyChain(entries)
	for _, e := range entries {
		note := ""
		if e.Note != "" {
			note = "  " + e.Note
		}
		fmt.Fprintf(stdout, "%3d  %s  %3d bench  %3d goldens  %.12s..%s\n",
			e.Index, e.Snapshot.Date, len(e.Snapshot.Benchmarks), len(e.Snapshot.Goldens), e.Hash, note)
	}
	return chainErr
}

func ledgerDiff(cfg config, stdout *os.File) (bool, error) {
	entries, err := ledger.Load(cfg.ledgerFile)
	if err != nil {
		return false, err
	}
	if err := ledger.VerifyChain(entries); err != nil {
		return false, err
	}
	old, latest, ok := ledger.LatestPair(entries)
	if !ok {
		return false, fmt.Errorf("-ledger diff needs at least two entries (have %d)", len(entries))
	}
	return diffSnapshots(cfg, old, latest, stdout)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
