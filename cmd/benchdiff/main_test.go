package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// writeSnap writes a v2 snapshot with the given ns/op samples (and 0
// allocs/op unless overridden) and returns its path.
func writeSnap(t *testing.T, dir, name string, benches map[string][]float64, allocs map[string]int64) string {
	t.Helper()
	s := benchfmt.Snapshot{Schema: benchfmt.SchemaV2, Date: name}
	for bench, samples := range benches {
		for _, ns := range samples {
			a := allocs[bench]
			smp := benchfmt.Sample{Iterations: 1, NsOp: ns, AllocsOp: &a}
			s.Add(bench, "repro", 8, smp)
		}
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs benchdiff's run() with stdout redirected to a pipe and
// returns (exit code, stdout).
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	code := run(args, tmp, os.Stderr)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

var baseline = map[string][]float64{
	"BenchmarkTable1_01_pfl": {65e6, 65.5e6, 64.8e6, 65.2e6, 65.1e6},
	"BenchmarkEKFSLAMStep":   {23400, 23500, 23450, 23480, 23420},
}

func TestAAComparisonPasses(t *testing.T) {
	dir := t.TempDir()
	a := writeSnap(t, dir, "a", baseline, nil)
	b := writeSnap(t, dir, "b", baseline, nil)
	code, out := capture(t, []string{"-threshold", "5", a, b})
	if code != 0 {
		t.Fatalf("A/A comparison failed (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "ok: no significant regressions") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestSyntheticSlowdownFlags(t *testing.T) {
	dir := t.TempDir()
	slowed := map[string][]float64{
		"BenchmarkTable1_01_pfl": {65e6, 65.5e6, 64.8e6, 65.2e6, 65.1e6},
		"BenchmarkEKFSLAMStep":   {35400, 35500, 35450, 35480, 35420}, // +51%
	}
	a := writeSnap(t, dir, "a", baseline, nil)
	b := writeSnap(t, dir, "b", slowed, nil)
	code, out := capture(t, []string{"-threshold", "5", a, b})
	if code != 1 {
		t.Fatalf("synthetic regression not flagged (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "BenchmarkEKFSLAMStep") {
		t.Fatalf("output:\n%s", out)
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Fatalf("unchanged benchmark also flagged:\n%s", out)
	}
}

func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	slowed := map[string][]float64{
		"BenchmarkTable1_01_pfl": {95e6, 95.5e6, 94.8e6, 95.2e6, 95.1e6},
		"BenchmarkEKFSLAMStep":   {23400, 23500, 23450, 23480, 23420},
	}
	a := writeSnap(t, dir, "a", baseline, nil)
	b := writeSnap(t, dir, "b", slowed, nil)
	code, out := capture(t, []string{"-json", "-threshold", "5", a, b})
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var doc struct {
		Deltas []struct {
			Name    string  `json:"name"`
			Delta   float64 `json:"delta_pct"`
			P       float64 `json:"p"`
			Verdict string  `json:"verdict"`
		} `json:"deltas"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output not JSON: %v\n%s", err, out)
	}
	if len(doc.Deltas) != 2 {
		t.Fatalf("deltas = %+v", doc.Deltas)
	}
	for _, d := range doc.Deltas {
		if d.Name == "BenchmarkTable1_01_pfl" {
			if d.Verdict != "regression" || d.Delta < 40 || d.P >= 0.05 {
				t.Fatalf("pfl delta = %+v", d)
			}
		}
	}
}

func TestV1SnapshotReadsAsBaseline(t *testing.T) {
	// benchdiff must still read the checked-in v1 snapshot; as n=1 samples
	// it can never flag, even against a much slower v2 snapshot.
	slowed := map[string][]float64{}
	v1, err := benchfmt.Load("../../BENCH_2026-08-05.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range v1.Benchmarks {
		slowed[b.Name] = []float64{b.Samples[0].NsOp * 2}
	}
	b := writeSnap(t, t.TempDir(), "b", slowed, nil)
	code, out := capture(t, []string{"-threshold", "5", "-allocs=false", "../../BENCH_2026-08-05.json", b})
	if code != 0 {
		t.Fatalf("v1 n=1 baseline flagged (exit %d):\n%s", code, out)
	}
}

func TestAllocGateFoldedIn(t *testing.T) {
	dir := t.TempDir()
	ns := map[string][]float64{"BenchmarkEKFSLAMStep": {100, 101, 99, 100, 102}}
	a := writeSnap(t, dir, "a", ns, map[string]int64{"BenchmarkEKFSLAMStep": 0})
	b := writeSnap(t, dir, "b", ns, map[string]int64{"BenchmarkEKFSLAMStep": 2})
	code, out := capture(t, []string{"-threshold", "5", a, b})
	if code != 1 || !strings.Contains(out, "allocs/op 0 → 2") {
		t.Fatalf("alloc growth not flagged (exit %d):\n%s", code, out)
	}
}

func TestZeroAllocPin(t *testing.T) {
	dir := t.TempDir()
	ns := map[string][]float64{"BenchmarkEKFSLAMStep": {100, 101, 99, 100, 102}}
	// Both snapshots allocate: no old→new increase, but -zeroalloc pins it.
	a := writeSnap(t, dir, "a", ns, map[string]int64{"BenchmarkEKFSLAMStep": 3})
	b := writeSnap(t, dir, "b", ns, map[string]int64{"BenchmarkEKFSLAMStep": 3})
	code, out := capture(t, []string{"-zeroalloc", "Step$", a, b})
	if code != 1 || !strings.Contains(out, "ZEROALLOC BenchmarkEKFSLAMStep") {
		t.Fatalf("zeroalloc violation not flagged (exit %d):\n%s", code, out)
	}
	// And with 0 allocs it passes.
	a0 := writeSnap(t, dir, "a0", ns, nil)
	b0 := writeSnap(t, dir, "b0", ns, nil)
	code, out = capture(t, []string{"-zeroalloc", "Step$", a0, b0})
	if code != 0 {
		t.Fatalf("clean zeroalloc failed (exit %d):\n%s", code, out)
	}
	// A pattern matching nothing is an error, not a silent pass.
	code, _ = capture(t, []string{"-zeroalloc", "NoSuchBench", a0, b0})
	if code != 1 {
		t.Fatalf("unmatched -zeroalloc pattern exited %d, want 1", code)
	}
}

func TestLedgerAppendVerifyTamper(t *testing.T) {
	dir := t.TempDir()
	a := writeSnap(t, dir, "a", baseline, nil)
	b := writeSnap(t, dir, "b", baseline, nil)
	lf := filepath.Join(dir, "ledger.jsonl")

	for _, snap := range []string{a, b} {
		code, out := capture(t, []string{"-ledger", "append", "-ledger-file", lf, snap})
		if code != 0 {
			t.Fatalf("append %s failed:\n%s", snap, out)
		}
	}
	code, out := capture(t, []string{"-ledger", "verify", "-ledger-file", lf})
	if code != 0 || !strings.Contains(out, "ledger OK: 2 entries") {
		t.Fatalf("verify (exit %d):\n%s", code, out)
	}
	code, out = capture(t, []string{"-ledger", "show", "-ledger-file", lf})
	if code != 0 || strings.Count(out, "\n") != 2 {
		t.Fatalf("show (exit %d):\n%s", code, out)
	}
	code, _ = capture(t, []string{"-ledger", "diff", "-ledger-file", lf, "-threshold", "5"})
	if code != 0 {
		t.Fatalf("A/A ledger diff exited %d", code)
	}

	// Tamper with the first entry: verify must fail with exit 1.
	data, err := os.ReadFile(lf)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "65000000", "1", 1)
	if tampered == string(data) {
		t.Fatal("tamper target value not found in ledger file")
	}
	if err := os.WriteFile(lf, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _ = capture(t, []string{"-ledger", "verify", "-ledger-file", lf})
	if code != 1 {
		t.Fatalf("tampered ledger verify exited %d, want 1", code)
	}
	// Appending onto the tampered chain must also refuse.
	code, _ = capture(t, []string{"-ledger", "append", "-ledger-file", lf, a})
	if code != 1 {
		t.Fatalf("append onto tampered chain exited %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run([]string{"only-one.json"}, os.Stdout, os.Stderr); code != 1 {
		t.Fatalf("single snapshot arg exited %d, want 1", code)
	}
	if code := run([]string{"-ledger", "bogus"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("bad ledger mode exited %d, want 2", code)
	}
}
