// Command mapgen generates the suite's synthetic inputsets and writes them
// to disk, mirroring the original repository's practice of shipping
// "multiple inputsets for many of the kernels" (paper §VI).
//
//	mapgen -kind city -w 1024 -h 1024 -seed 1 -o boston_like.map
//	mapgen -kind indoor -w 192 -h 96 -o building.map
//	mapgen -kind prob -scale 4 -o prob_x4.map
//
// 2D maps are written in the Moving AI benchmark format, which pp2d and pfl
// load back via --map.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/rng"
	"repro/internal/search"
)

func main() {
	kind := flag.String("kind", "city", "map kind: city | indoor | prob")
	w := flag.Int("w", 512, "width, cells")
	h := flag.Int("h", 512, "height, cells")
	seed := flag.Int64("seed", 1, "generator seed")
	scale := flag.Int("scale", 1, "integer scale factor (prob kind)")
	out := flag.String("o", "", "output path (default: stdout)")
	scenN := flag.Int("scen", 0, "also generate this many random scenarios")
	scenOut := flag.String("scenout", "", "scenario output path (requires -scen and -o)")
	flag.Parse()

	var g *grid.Grid2D
	switch *kind {
	case "city":
		g = maps.CityMap(*w, *h, *seed)
	case "indoor":
		g = maps.IndoorMap(*w, *h, *seed)
	case "prob":
		g = maps.PRobMap().Scale(*scale)
	default:
		fmt.Fprintf(os.Stderr, "mapgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := grid.WriteMovingAI(dst, g); err != nil {
		fmt.Fprintf(os.Stderr, "mapgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %dx%d %s map (%d obstacle cells) to %s\n",
			g.W, g.H, *kind, g.CountOccupied(), *out)
	}

	if *scenN > 0 {
		if *scenOut == "" || *out == "" {
			fmt.Fprintln(os.Stderr, "mapgen: -scen requires both -o and -scenout")
			os.Exit(2)
		}
		scens, err := makeScenarios(g, *out, *scenN, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapgen: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*scenOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mapgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := grid.WriteScen(f, scens); err != nil {
			fmt.Fprintf(os.Stderr, "mapgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d scenarios (with computed optimal costs) to %s\n", len(scens), *scenOut)
	}
}

// makeScenarios samples random solvable start/goal pairs on the map and
// records their true optimal octile costs, producing a Moving AI-style
// problem set for the generated map.
func makeScenarios(g *grid.Grid2D, mapName string, n int, seed int64) ([]grid.Scenario, error) {
	r := rng.New(seed + 0x5ce)
	sp := &search.Grid2DSpace{G: g}
	var out []grid.Scenario
	attempts := 0
	for len(out) < n && attempts < 100*n {
		attempts++
		sx, sy := r.Intn(g.W), r.Intn(g.H)
		gx, gy := r.Intn(g.W), r.Intn(g.H)
		if g.Occupied(sx, sy) || g.Occupied(gx, gy) || (sx == gx && sy == gy) {
			continue
		}
		res, err := search.Solve(search.Problem{
			Space: sp,
			Start: sp.ID(sx, sy),
			Goal:  sp.ID(gx, gy),
			H:     sp.OctileHeuristic(gx, gy),
		})
		if err != nil {
			continue // unreachable pair
		}
		out = append(out, grid.Scenario{
			Bucket:  len(out) / 10,
			MapName: mapName,
			MapW:    g.W, MapH: g.H,
			StartX: sx, StartY: g.H - 1 - sy,
			GoalX: gx, GoalY: g.H - 1 - gy,
			OptimalLength: res.Cost,
		})
	}
	if len(out) < n {
		return out, fmt.Errorf("only found %d solvable scenarios of %d requested", len(out), n)
	}
	return out, nil
}
