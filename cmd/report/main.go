// Command report runs the RTRBench-Go suite and prints the paper's
// characterization tables:
//
//	report -table1             Table I: per-kernel dominant phase breakdown
//	report -kernel <name>      one kernel's full phase/counter report
//	report -rrtcompare         §V.9-10: RRT vs RRT* vs RRT-PP time & cost
//	report -movtarsweep        §V.6: heuristic share vs environment size
//	report -fig21              Fig. 21: optimized vs naive A* across scales
//	report -symcompare         §V.12: sym-fext vs sym-blkw branching
//
// Add -size=default for paper-scale inputs (slower); the default -size=small
// keeps every experiment sub-second for smoke runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core/movtar"
	"repro/internal/core/pp2d"
	"repro/internal/core/rrt"
	"repro/internal/grid"
	"repro/internal/maps"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/rtrbench"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print the Table I reproduction")
		kernel   = flag.String("kernel", "", "run one kernel and print its report")
		rrtCmp   = flag.Bool("rrtcompare", false, "compare RRT / RRT* / RRT-PP")
		movSweep = flag.Bool("movtarsweep", false, "movtar heuristic share vs map size")
		fig21    = flag.Bool("fig21", false, "library comparison across map scales")
		symCmp   = flag.Bool("symcompare", false, "sym-fext vs sym-blkw branching")
		size     = flag.String("size", "small", "configuration size: small | default")
		seed     = flag.Int64("seed", 1, "random seed")
		variant  = flag.String("variant", "", "kernel variant (e.g. mapf/mapc, pfl region)")
		jsonOut  = flag.Bool("json", false, "with -table1: emit machine-readable JSON instead of text")
		deadline = flag.Duration("deadline", 0, "per-step real-time deadline (e.g. 10ms); 0 = off")
		stepLat  = flag.Bool("steplat", false, "record per-step latency even without a deadline")
		parallel = flag.Int("parallel", runtime.NumCPU(), "with -table1: kernels running concurrently")
		trials   = flag.Int("trials", 1, "with -table1: measured runs per kernel (trial t uses seed+t)")
		warmup   = flag.Int("warmup", 0, "with -table1: discarded runs per kernel before the trials")
		timeout  = flag.Duration("timeout", 0, "with -table1: per-run wall-clock budget; 0 = off")

		chaos     = flag.Bool("chaos", false, "with -table1: inject deterministic faults (dropouts, NaNs, noise, stalls, panics)")
		chaosSeed = flag.Int64("chaos-seed", 1, "chaos schedule seed (independent of -seed)")
	)
	flag.Parse()

	opts := rtrbench.Options{Seed: *seed, Variant: *variant, Deadline: *deadline, StepLatency: *stepLat}
	if *size == "default" {
		opts.Size = rtrbench.SizeDefault
	}

	ran := false
	if *table1 {
		sweep := rtrbench.SuiteOptions{
			Options:         opts,
			Parallel:        *parallel,
			Trials:          *trials,
			Warmup:          *warmup,
			Timeout:         *timeout,
			ContinueOnError: true,
		}
		// Variants are per-kernel; the sweep always runs defaults.
		sweep.Variant = ""
		if *chaos {
			sweep.Fault = &rtrbench.FaultOptions{
				Seed:    *chaosSeed,
				Dropout: 0.05,
				NaN:     0.02,
				Noise:   0.05,
				Stall:   0.02,
				Panic:   0.1,
			}
			sweep.BestEffort = true
		}
		res, err := rtrbench.Suite(context.Background(), sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			runTable1JSON(res)
		} else {
			runTable1(res)
		}
		ran = true
	}
	if *kernel != "" {
		runOne(*kernel, opts)
		ran = true
	}
	if *rrtCmp {
		runRRTCompare(opts)
		ran = true
	}
	if *movSweep {
		runMovtarSweep(opts)
		ran = true
	}
	if *fig21 {
		runFig21(opts)
		ran = true
	}
	if *symCmp {
		runSymCompare(opts)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(sweep rtrbench.SuiteResult) {
	fmt.Println("Table I reproduction: kernel, stage, measured dominant phase vs paper bottleneck")
	fmt.Printf("%-4s %-10s %-11s %-14s %-7s %-8s %s\n",
		"#", "kernel", "stage", "dominant", "share", "ROI", "paper bottleneck(s)")
	for _, kr := range sweep.Kernels {
		k, res := kr.Info, kr.Result
		if kr.Err != nil {
			fmt.Printf("%-4d %-10s ERROR: %v\n", k.Index, k.Name, kr.Err)
			continue
		}
		dom := res.Dominant()
		match := " "
		for _, e := range k.ExpectDominant {
			if e == dom {
				match = "*"
				break
			}
		}
		roi := res.ROI
		if kr.Trials != nil && kr.Trials.Trials > 1 {
			roi = kr.Trials.ROIMean
		}
		fmt.Printf("%-4d %-10s %-11s %-13s%s %5.1f%% %-8s %s\n",
			k.Index, k.Name, k.Stage, dom, match,
			100*res.Fraction(dom), roi.Round(time.Millisecond),
			strings.Join(k.PaperBottlenecks, ", "))
	}
	fmt.Println("(* = measured dominant phase confirms the paper's characterization)")
}

// kernelReport converts a public Result into the rtrbench.report/v1 schema
// row shared with cmd/rtrbench --format=json.
func kernelReport(k rtrbench.Info, res rtrbench.Result) obs.KernelReport {
	row := obs.KernelReport{
		Kernel:           k.Name,
		Stage:            string(k.Stage),
		Index:            k.Index,
		PaperBottlenecks: k.PaperBottlenecks,
		ROISeconds:       res.ROI.Seconds(),
		Dominant:         res.Dominant(),
		Inconsistent:     res.Inconsistent,
		Counters:         res.Counters,
		Metrics:          res.Metrics,
	}
	for _, e := range k.ExpectDominant {
		if e == row.Dominant {
			row.MatchesPaper = true
		}
	}
	for _, p := range res.Phases {
		row.Phases = append(row.Phases, obs.PhaseReport{
			Name: p.Name, Seconds: p.Duration.Seconds(),
			Calls: p.Calls, Fraction: p.Fraction,
		})
	}
	if s := res.Steps; s != nil {
		row.Steps = &obs.StepReport{
			Count:           s.Count,
			MinSeconds:      s.Min.Seconds(),
			MeanSeconds:     s.Mean.Seconds(),
			P50Seconds:      s.P50.Seconds(),
			P95Seconds:      s.P95.Seconds(),
			P99Seconds:      s.P99.Seconds(),
			MaxSeconds:      s.Max.Seconds(),
			DeadlineSeconds: s.Deadline.Seconds(),
			DeadlineMisses:  s.Misses,
		}
	}
	return row
}

// runTable1JSON emits the Table I sweep as rtrbench.report/v1 JSON (one
// object per kernel) for downstream tooling: CI dashboards, regression
// tracking, plotting. The schema is shared with cmd/rtrbench --format=json;
// multi-trial sweeps add the optional trials block.
func runTable1JSON(sweep rtrbench.SuiteResult) {
	var out []obs.KernelReport
	for _, kr := range sweep.Kernels {
		k := kr.Info
		if kr.Err != nil {
			out = append(out, obs.KernelReport{
				Kernel: k.Name, Stage: string(k.Stage), Index: k.Index,
				PaperBottlenecks: k.PaperBottlenecks, Error: kr.Err.Error(),
			})
			continue
		}
		row := kernelReport(k, kr.Result)
		if ts := kr.Trials; ts != nil {
			row.Trials = &obs.TrialsReport{
				Trials:           ts.Trials,
				ROIMeanSeconds:   ts.ROIMean.Seconds(),
				ROIMinSeconds:    ts.ROIMin.Seconds(),
				ROIMaxSeconds:    ts.ROIMax.Seconds(),
				ROIStddevSeconds: ts.ROIStddev.Seconds(),
				Counters:         ts.Counters,
			}
			if st := ts.Steps; st != nil {
				row.Trials.Steps = &obs.StepReport{
					Count:           st.Count,
					MinSeconds:      st.Min.Seconds(),
					MeanSeconds:     st.Mean.Seconds(),
					P50Seconds:      st.P50.Seconds(),
					P95Seconds:      st.P95.Seconds(),
					P99Seconds:      st.P99.Seconds(),
					MaxSeconds:      st.Max.Seconds(),
					DeadlineSeconds: st.Deadline.Seconds(),
					DeadlineMisses:  st.Misses,
				}
			}
		}
		out = append(out, row)
	}
	if err := obs.WriteJSONAll(os.Stdout, out); err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
}

func runOne(name string, opts rtrbench.Options) {
	res, err := rtrbench.Run(name, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernel %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("kernel %s (%s)  ROI %v\n", res.Kernel, res.Stage, res.ROI)
	if res.Inconsistent {
		fmt.Println("  WARNING: inconsistent profile snapshot (open phases or ROI)")
	}
	for _, p := range res.Phases {
		fmt.Printf("  %-16s %12v  calls=%-10d %5.1f%%\n", p.Name, p.Duration, p.Calls, 100*p.Fraction)
	}
	if s := res.Steps; s != nil && s.Count > 0 {
		fmt.Printf("  steps %-16d p50=%v p95=%v p99=%v max=%v\n",
			s.Count, s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
		if s.Deadline > 0 {
			fmt.Printf("  deadline %v: %d misses (%.1f%%)\n",
				s.Deadline, s.Misses, 100*float64(s.Misses)/float64(s.Count))
		}
	}
	keys := make([]string, 0, len(res.Metrics))
	for k := range res.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  metric %-22s %g\n", k, res.Metrics[k])
	}
	for name, s := range res.Series {
		fmt.Printf("  series %-22s n=%d", name, len(s))
		if len(s) > 0 {
			fmt.Printf("  first=%.3f last=%.3f", s[0], s[len(s)-1])
		}
		fmt.Println()
	}
}

// runRRTCompare reproduces the §V.9-10 evaluation: RRT* is several times
// slower than RRT but yields markedly shorter paths; RRT-PP lands between.
func runRRTCompare(opts rtrbench.Options) {
	cfg := rrt.DefaultConfig()
	cfg.Seed = opts.Seed
	if opts.Size == rtrbench.SizeSmall {
		cfg.MaxSamples = 6000
	}
	type row struct {
		name string
		time time.Duration
		cost float64
		nn   float64 // fraction of ROI in nearest-neighbor search
		col  float64 // fraction in collision detection
	}
	var rows []row
	run := func(name string, f func(context.Context, rrt.Config, *profile.Profile) (rrt.Result, error)) {
		// Average over a few seeds: sampling planners are noisy.
		var total time.Duration
		var cost, nn, col float64
		const reps = 5
		ok := 0
		for s := int64(0); s < reps; s++ {
			c := cfg
			c.Seed = cfg.Seed + s
			p := profile.New()
			r, err := f(context.Background(), c, p)
			if err != nil {
				continue
			}
			rep := p.Snapshot()
			total += rep.ROI
			cost += r.PathCost
			nn += rep.Fraction("nn")
			col += rep.Fraction("collision")
			ok++
		}
		if ok == 0 {
			fmt.Printf("%-8s all seeds failed\n", name)
			return
		}
		rows = append(rows, row{name, total / time.Duration(ok), cost / float64(ok), nn / float64(ok), col / float64(ok)})
	}
	run("rrt", rrt.Run)
	run("rrtpp", rrt.RunPP)
	run("rrtstar", rrt.RunStar)

	fmt.Println("RRT family comparison (mean over 5 seeds), Map-C:")
	fmt.Printf("%-8s %12s %10s %8s %8s\n", "kernel", "time", "pathcost", "nn%", "coll%")
	for _, r := range rows {
		fmt.Printf("%-8s %12v %10.3f %7.1f%% %7.1f%%\n", r.name, r.time.Round(time.Microsecond), r.cost, 100*r.nn, 100*r.col)
	}
	if len(rows) == 3 {
		fmt.Printf("slowdown rrtstar/rrt: %.1fx   path ratio rrt/rrtstar: %.2fx   rrtpp between: time %v..%v cost %.2f..%.2f\n",
			float64(rows[2].time)/float64(rows[0].time),
			rows[0].cost/rows[2].cost,
			rows[0].time.Round(time.Microsecond), rows[2].time.Round(time.Microsecond),
			rows[2].cost, rows[0].cost)
	}
}

// runMovtarSweep reproduces §V.6: the heuristic (backward Dijkstra) share of
// end-to-end time grows as the environment shrinks.
func runMovtarSweep(opts rtrbench.Options) {
	sizes := []int{48, 96, 192, 384}
	if opts.Size == rtrbench.SizeDefault {
		sizes = append(sizes, 512)
	}
	fmt.Println("movtar: heuristic share vs environment size")
	fmt.Printf("%-8s %12s %10s %10s %10s\n", "size", "ROI", "heur%", "search%", "expanded")
	for _, s := range sizes {
		cfg := movtar.DefaultConfig()
		cfg.Size = s
		cfg.Seed = opts.Seed
		p := profile.New()
		r, err := movtar.Run(context.Background(), cfg, p)
		if err != nil {
			fmt.Printf("%-8d ERROR: %v\n", s, err)
			continue
		}
		rep := p.Snapshot()
		fmt.Printf("%-8d %12v %9.1f%% %9.1f%% %10d\n",
			s, rep.ROI.Round(time.Microsecond),
			100*rep.Fraction("heuristic"), 100*rep.Fraction("search"), r.Expanded)
	}
}

// runFig21 reproduces the paper's Fig. 21: the optimized pp2d planner versus
// the P-Rob-style (interpreted) and C-Rob-style (copy-by-value) baselines on
// the PythonRobotics demo map scaled by powers of two.
func runFig21(opts rtrbench.Options) {
	scales := []int{1, 2, 4, 8}
	if opts.Size == rtrbench.SizeDefault {
		scales = append(scales, 16, 32)
	}
	fmt.Println("Fig. 21 reproduction: execution time by map scale")
	fmt.Printf("%-6s %14s %14s %14s %10s %10s\n", "scale", "RTRBench", "P-Rob-style", "C-Rob-style", "P/R", "C/R")
	base := maps.PRobMap()
	for _, k := range scales {
		g := base.Scale(k)
		sx, sy, gx, gy := maps.PRobStartGoal(k)

		tOpt := timeIt(func() { optimizedPointAStar(g, sx, sy, gx, gy) })
		tInterp := timeIt(func() { naive.Interp(g, sx, sy, gx, gy) })
		tCopy := timeIt(func() { naive.Copy(g, sx, sy, gx, gy) })

		fmt.Printf("%-6d %14v %14v %14v %9.1fx %9.1fx\n",
			k, tOpt.Round(time.Microsecond), tInterp.Round(time.Microsecond), tCopy.Round(time.Microsecond),
			float64(tInterp)/float64(tOpt), float64(tCopy)/float64(tOpt))
	}
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// optimizedPointAStar runs the suite's A* as a point robot (the baselines
// are point planners, so the comparison is like for like).
func optimizedPointAStar(g *grid.Grid2D, sx, sy, gx, gy int) {
	cfg := pp2d.DefaultConfig()
	cfg.Map = g
	// A point robot: footprint smaller than one cell.
	cfg.CarLength = g.Resolution * 0.5
	cfg.CarWidth = g.Resolution * 0.5
	cfg.StartX, cfg.StartY, cfg.GoalX, cfg.GoalY = sx, sy, gx, gy
	if _, err := pp2d.Run(context.Background(), cfg, profile.Disabled()); err != nil {
		fmt.Fprintf(os.Stderr, "fig21: optimized planner failed: %v\n", err)
	}
}

// runSymCompare reproduces §V.12: the firefighting domain exposes a higher
// branching factor (more applicable actions per state) than blocks world.
func runSymCompare(opts rtrbench.Options) {
	blkw, err1 := rtrbench.Run("sym-blkw", opts)
	fext, err2 := rtrbench.Run("sym-fext", opts)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(os.Stderr, "symcompare: %v %v\n", err1, err2)
		os.Exit(1)
	}
	bb := blkw.Metric("avg_branching")
	fb := fext.Metric("avg_branching")
	fmt.Printf("sym-blkw: plan=%d expanded=%.0f branching=%.2f\n",
		int(blkw.Metric("plan_length")), blkw.Metric("expanded"), bb)
	fmt.Printf("sym-fext: plan=%d expanded=%.0f branching=%.2f\n",
		int(fext.Metric("plan_length")), fext.Metric("expanded"), fb)
	if bb > 0 {
		fmt.Printf("branching ratio fext/blkw: %.2fx (paper: ~3.2x)\n", fb/bb)
	}
}
