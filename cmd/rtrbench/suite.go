package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/rtrbench"
)

// runSuite implements `rtrbench suite`: the full (or filtered) 16-kernel
// sweep on the parallel execution engine, with per-kernel trial statistics.
func runSuite(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	var (
		size     = fs.String("size", "small", "workload size: small | default")
		seed     = fs.Int64("seed", 1, "base random seed (trial t runs with seed+t)")
		kernels  = fs.String("kernels", "", "comma-separated kernel subset (default: all 16)")
		parallel = fs.Int("parallel", runtime.NumCPU(), "kernels running concurrently")
		workers  = fs.Int("workers", 0, "intra-kernel worker goroutines for the kernels that support it (pfl, ekfslam, prm, rrt*); 0 = serial algorithms")
		trials   = fs.Int("trials", 1, "measured runs per kernel")
		warmup   = fs.Int("warmup", 0, "discarded runs per kernel before the trials")
		timeout  = fs.Duration("timeout", 0, "per-run wall-clock budget (e.g. 30s); 0 = off")
		keepOn   = fs.Bool("continue", false, "keep sweeping after a kernel fails (the exit code still reports the failures)")
		deadline = fs.Duration("deadline", 0, "per-step real-time deadline (e.g. 10ms); 0 = off")
		stepLat  = fs.Bool("steplat", false, "record per-step latency histograms")
		format   = fs.String("format", "text", "report format: text | json | csv")
		out      = fs.String("out", "", "write the report to this file instead of stdout")

		chaos      = fs.Bool("chaos", false, "inject deterministic faults (dropouts, NaNs, noise, stalls, panics); implies -continue and best-effort degradation")
		chaosSeed  = fs.Int64("chaos-seed", 1, "chaos schedule seed (independent of -seed)")
		chaosStall = fs.Duration("chaos-stall", time.Millisecond, "duration of each injected stall")
		retries    = fs.Int("retries", 0, "retries per trial after a transient timeout")
		retryWait  = fs.Duration("retry-backoff", 0, "pause before a retry (grows linearly per attempt)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := rtrbench.SuiteOptions{
		Options: rtrbench.Options{
			Seed:        *seed,
			Deadline:    *deadline,
			StepLatency: *stepLat,
			Workers:     *workers,
		},
		Parallel:        *parallel,
		Trials:          *trials,
		Warmup:          *warmup,
		Timeout:         *timeout,
		ContinueOnError: *keepOn,
		Retries:         *retries,
		RetryBackoff:    *retryWait,
	}
	if *chaos {
		// The default chaos mix exercises every fault class: lost and
		// corrupted sensor readings, latency stalls at step boundaries,
		// and a low-probability injected panic per run. Panics surface as
		// structured errors, so the sweep must keep going past them, and
		// kernels should degrade rather than fail on chaos-induced
		// deadline pressure.
		opts.Fault = &rtrbench.FaultOptions{
			Seed:     *chaosSeed,
			Dropout:  0.05,
			NaN:      0.02,
			Noise:    0.05,
			Stall:    0.02,
			StallFor: *chaosStall,
			Panic:    0.1,
		}
		opts.BestEffort = true
		opts.ContinueOnError = true
	}
	switch *size {
	case "small":
		opts.Size = rtrbench.SizeSmall
	case "default":
		opts.Size = rtrbench.SizeDefault
	default:
		return fmt.Errorf("unknown --size %q (want small or default)", *size)
	}
	if *kernels != "" {
		for _, name := range strings.Split(*kernels, ",") {
			opts.Kernels = append(opts.Kernels, strings.TrimSpace(name))
		}
	}

	// Normalize up front so flag mistakes fail before any kernel runs and
	// the report header shows the effective (defaulted) settings.
	opts, err := opts.Normalize()
	if err != nil {
		return err
	}

	// Ctrl-C cancels the in-flight kernels instead of killing the process;
	// the partial sweep still reports.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := rtrbench.Suite(ctx, opts)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("--out: %w", err)
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "json":
		if err := obs.WriteJSONAll(w, report.Suite(res)); err != nil {
			return err
		}
	case "csv":
		if err := obs.WriteCSVAll(w, report.Suite(res)); err != nil {
			return err
		}
	case "text":
		suiteText(w, res, opts)
	default:
		return fmt.Errorf("unknown --format %q (want text, json, or csv)", *format)
	}
	return suiteExitError(res, *chaos)
}

// suiteExitError turns kernel failures into a non-zero exit. -continue
// keeps the sweep going past failures but no longer masks them from the
// exit code; a green exit means a clean sweep. Under -chaos, failures the
// engine attributes to an injected fault are the point of the exercise and
// are excused — anything without fault attribution is a real bug and still
// fails the run.
func suiteExitError(res rtrbench.SuiteResult, chaos bool) error {
	fails := res.Failures()
	if chaos {
		hard := fails[:0:0]
		for _, f := range fails {
			if f.Fault == "" {
				hard = append(hard, f)
			}
		}
		fails = hard
	}
	if len(fails) == 0 {
		return nil
	}
	return fmt.Errorf("suite: %d kernel failure(s); first: %s: %v", len(fails), fails[0].Kernel, fails[0].Err)
}

// suiteText prints the human-readable sweep table.
func suiteText(w io.Writer, res rtrbench.SuiteResult, opts rtrbench.SuiteOptions) {
	trials := opts.Trials
	if trials <= 0 {
		trials = 1
	}
	fmt.Fprintf(w, "suite: %d kernels, %d trial(s), parallel=%d, %v total\n",
		len(res.Kernels), trials, opts.Parallel, res.Elapsed.Round(time.Millisecond))
	if trials > 1 {
		fmt.Fprintf(w, "%-3s %-10s %-10s %12s %12s %12s %s\n",
			"#", "kernel", "stage", "roi-mean", "roi-min", "roi-stddev", "status")
	} else {
		fmt.Fprintf(w, "%-3s %-10s %-10s %12s %s\n", "#", "kernel", "stage", "roi", "status")
	}
	for _, k := range res.Kernels {
		status := suiteStatus(k)
		if ts := k.Trials; ts != nil && trials > 1 {
			fmt.Fprintf(w, "%-3d %-10s %-10s %12v %12v %12v %s\n",
				k.Info.Index, k.Info.Name, k.Info.Stage,
				ts.ROIMean.Round(time.Microsecond), ts.ROIMin.Round(time.Microsecond),
				ts.ROIStddev.Round(time.Microsecond), status)
		} else if trials > 1 {
			fmt.Fprintf(w, "%-3d %-10s %-10s %12s %12s %12s %s\n",
				k.Info.Index, k.Info.Name, k.Info.Stage, "-", "-", "-", status)
		} else {
			fmt.Fprintf(w, "%-3d %-10s %-10s %12v %s\n",
				k.Info.Index, k.Info.Name, k.Info.Stage,
				k.Result.ROI.Round(time.Microsecond), status)
		}
	}
	if fails := res.Failures(); len(fails) > 0 {
		fmt.Fprintf(w, "\nfailures (%d):\n", len(fails))
		for _, f := range fails {
			where := "setup"
			if f.Trial >= 0 {
				where = fmt.Sprintf("trial %d", f.Trial)
			}
			if f.Fault != "" {
				fmt.Fprintf(w, "  %-10s %-8s [%s] %v\n", f.Kernel, where, f.Fault, f.Err)
			} else {
				fmt.Fprintf(w, "  %-10s %-8s %v\n", f.Kernel, where, f.Err)
			}
		}
	}
}

// suiteStatus summarizes one kernel row: ok / degraded / the error, with
// injected-fault and retry counts appended when chaos or retries were live.
func suiteStatus(k rtrbench.KernelResult) string {
	status := "ok"
	switch {
	case k.Err != nil:
		status = k.Err.Error()
	case k.Trials != nil && k.Trials.Degraded > 0:
		status = fmt.Sprintf("degraded (%d/%d trials)", k.Trials.Degraded, k.Trials.Trials)
	case k.Result.Degraded:
		status = "degraded"
	}
	if k.Trials != nil && len(k.Trials.Faults) > 0 {
		status += fmt.Sprintf("  faults=%d", len(k.Trials.Faults))
	}
	if k.Retried > 0 {
		status += fmt.Sprintf("  retries=%d", k.Retried)
	}
	return status
}
