package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"repro/rtrbench"
)

// runVerify implements `rtrbench verify`: the correctness gate that re-runs
// every kernel at the Small size and diffs its result digest (operation
// counts and final-state summaries — never timings) against the golden
// digests checked in under rtrbench/testdata/golden/.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	var (
		kernels  = fs.String("kernels", "", "comma-separated kernel subset (default: all 16)")
		seedsArg = fs.String("seeds", "", "comma-separated base seeds (default: the checked-in 1,42)")
		dir      = fs.String("golden", "rtrbench/testdata/golden", "golden digest directory")
		update   = fs.Bool("update", false, "regenerate the golden digests from the current code")
		parallel = fs.Int("parallel", runtime.NumCPU(), "kernels running concurrently")
		meta     = fs.Bool("metamorphic", false, "also check digest invariance: parallel 1 vs 8, trial reorder, profiling on vs off, intra-kernel workers 1 vs 8")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := rtrbench.VerifyOptions{
		Dir:         *dir,
		Update:      *update,
		Metamorphic: *meta,
		Parallel:    *parallel,
	}
	if *kernels != "" {
		for _, name := range strings.Split(*kernels, ",") {
			opts.Kernels = append(opts.Kernels, strings.TrimSpace(name))
		}
	}
	if *seedsArg != "" {
		for _, s := range strings.Split(*seedsArg, ",") {
			seed, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return fmt.Errorf("--seeds: bad seed %q", s)
			}
			opts.Seeds = append(opts.Seeds, seed)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rep, err := rtrbench.Verify(ctx, opts)
	if err != nil {
		return err
	}

	for _, path := range rep.Updated {
		fmt.Printf("wrote %s\n", path)
	}
	if len(rep.Updated) > 0 {
		fmt.Printf("updated %d golden digest(s)\n", len(rep.Updated))
		return nil
	}
	for _, path := range rep.Missing {
		fmt.Printf("MISSING %s (run `rtrbench verify -update` to create)\n", path)
	}
	for _, m := range rep.Mismatches {
		fmt.Printf("MISMATCH %s\n", m)
	}
	if !rep.OK() {
		return fmt.Errorf("%d mismatch(es), %d missing golden(s) across %d checked digest(s)",
			len(rep.Mismatches), len(rep.Missing), rep.Checked)
	}
	fmt.Printf("verify OK: %d digest comparison(s) clean\n", rep.Checked)
	return nil
}
