package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/rtrbench"
)

// harness carries the observability machinery shared by every kernel
// runner: report formats (text/json/csv/trace), per-step deadlines, and
// profiling hooks (--cpuprofile, --memprofile, --httpdebug). Runners
// register their kernel flags on h.fs, call h.parse, run the kernel with
// h.newProfile(), and hand the profile back through h.report.
type harness struct {
	name string
	fs   *flag.FlagSet

	format     string
	out        string
	deadline   time.Duration
	timeout    time.Duration
	stepLat    bool
	cpuprofile string
	memprofile string
	httpdebug  string

	cpuFile *os.File
	dbg     *obs.DebugServer
	runCtx  context.Context
	cancel  context.CancelFunc
}

// newHarness returns a harness with the shared observability flags
// registered; the caller adds kernel-specific flags before h.parse.
func newHarness(name string) *harness {
	h := &harness{name: name, fs: flag.NewFlagSet(name, flag.ExitOnError)}
	h.fs.StringVar(&h.format, "format", "text", "report format: text | json | csv | trace")
	h.fs.StringVar(&h.out, "out", "", "write the report to this file instead of stdout")
	h.fs.DurationVar(&h.deadline, "deadline", 0, "per-step real-time deadline (e.g. 10ms); 0 = off")
	h.fs.DurationVar(&h.timeout, "timeout", 0, "abort the run after this wall-clock budget (e.g. 30s); 0 = off")
	h.fs.BoolVar(&h.stepLat, "steplat", false, "record the per-step latency histogram even without a deadline")
	h.fs.StringVar(&h.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	h.fs.StringVar(&h.memprofile, "memprofile", "", "write a heap profile to this file at exit")
	h.fs.StringVar(&h.httpdebug, "httpdebug", "", "serve net/http/pprof, Prometheus /metrics, and the perf-ledger /ledger view on this address (e.g. localhost:6060) while running")
	return h
}

// parse parses args, validates the shared flags, and starts the CPU
// profiler and debug server when requested. Callers must pair it with a
// deferred h.close().
func (h *harness) parse(args []string) error {
	if err := h.fs.Parse(args); err != nil {
		return err
	}
	switch h.format {
	case "text", "json", "csv", "trace":
	default:
		return fmt.Errorf("unknown --format %q (want text, json, csv, or trace)", h.format)
	}
	if h.cpuprofile != "" {
		f, err := os.Create(h.cpuprofile)
		if err != nil {
			return fmt.Errorf("--cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("--cpuprofile: %w", err)
		}
		h.cpuFile = f
	}
	if h.httpdebug != "" {
		dbg, err := obs.StartDebug(h.httpdebug, nil)
		if err != nil {
			return err
		}
		h.dbg = dbg
		fmt.Fprintf(os.Stderr, "debug server on %s (/metrics, /ledger, /debug/pprof/)\n", dbg.URL)
	}
	if h.timeout > 0 {
		h.runCtx, h.cancel = context.WithTimeout(context.Background(), h.timeout)
	} else {
		h.runCtx = context.Background()
	}
	return nil
}

// ctx returns the run context: Background, or deadline-bounded when
// --timeout is set. Valid after h.parse.
func (h *harness) ctx() context.Context {
	return h.runCtx
}

// newProfile returns the kernel's profile, configured from the shared
// flags: deadline/step tracking, trace recording when --format=trace, and
// live counter export when the debug server is up.
func (h *harness) newProfile() *profile.Profile {
	p := profile.New()
	if h.deadline > 0 {
		p.SetDeadline(h.deadline)
	} else if h.stepLat {
		p.EnableSteps()
	}
	if h.format == "trace" {
		p.EnableTrace()
	}
	if h.dbg != nil {
		p.PublishLive(obs.LiveCounters)
	}
	return p
}

// close releases profiling resources: it stops the CPU profiler, writes the
// heap profile, and shuts down the debug server.
func (h *harness) close() {
	if h.cancel != nil {
		h.cancel()
		h.cancel = nil
	}
	if h.cpuFile != nil {
		pprof.StopCPUProfile()
		h.cpuFile.Close()
		h.cpuFile = nil
	}
	if h.memprofile != "" {
		if f, err := os.Create(h.memprofile); err == nil {
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
			f.Close()
		} else {
			fmt.Fprintf(os.Stderr, "--memprofile: %v\n", err)
		}
		h.memprofile = ""
	}
	if h.dbg != nil {
		_ = h.dbg.Close()
		h.dbg = nil
	}
}

// report renders the run in the selected format. metrics values may be
// bool, integer, or float; non-text formats coerce them to float64 per the
// rtrbench.report/v1 schema.
func (h *harness) report(p *profile.Profile, metrics map[string]interface{}) error {
	rep := p.Snapshot()
	w, closeW, err := h.writer()
	if err != nil {
		return err
	}
	defer closeW()

	switch h.format {
	case "json":
		return obs.WriteJSON(w, h.kernelReport(rep, metrics))
	case "csv":
		return obs.WriteCSV(w, h.kernelReport(rep, metrics))
	case "trace":
		return obs.WriteTrace(w, rep.Trace, map[string]string{
			"kernel": h.name,
			"schema": obs.SchemaVersion,
		})
	}
	reportText(w, rep, metrics)
	return nil
}

// writer returns the report destination (stdout or --out).
func (h *harness) writer() (io.Writer, func(), error) {
	if h.out == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(h.out)
	if err != nil {
		return nil, nil, fmt.Errorf("--out: %w", err)
	}
	return f, func() { f.Close() }, nil
}

// kernelReport assembles the flat schema shared with cmd/report.
func (h *harness) kernelReport(rep profile.Report, metrics map[string]interface{}) obs.KernelReport {
	kr := obs.KernelReport{
		Kernel:       h.name,
		ROISeconds:   rep.ROI.Seconds(),
		Dominant:     rep.Dominant(),
		Inconsistent: rep.Inconsistent,
		Counters:     rep.Counters,
		Metrics:      map[string]float64{},
		Steps:        obs.StepsFromSummary(rep.Steps),
	}
	if info, ok := rtrbench.Lookup(h.name); ok {
		kr.Stage = string(info.Stage)
		kr.Index = info.Index
	}
	for _, ph := range rep.Phases {
		kr.Phases = append(kr.Phases, obs.PhaseReport{
			Name:     ph.Name,
			Seconds:  ph.Total.Seconds(),
			Calls:    ph.Calls,
			Fraction: rep.Fraction(ph.Name),
		})
	}
	for k, v := range metrics {
		kr.Metrics[k] = metricValue(v)
	}
	return kr
}

// metricValue coerces a runner metric onto the schema's float64 domain.
func metricValue(v interface{}) float64 {
	switch x := v.(type) {
	case bool:
		if x {
			return 1
		}
		return 0
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return 0
	}
}

// reportText prints the human-readable report: ROI, phase table, step
// latency distribution, and kernel metrics.
func reportText(w io.Writer, rep profile.Report, metrics map[string]interface{}) {
	fmt.Fprintf(w, "ROI: %v\n", rep.ROI.Round(time.Microsecond))
	if rep.Inconsistent {
		fmt.Fprintf(w, "  WARNING: inconsistent profile (open phases: %v)\n", rep.OpenPhases)
	}
	for _, ph := range rep.Phases {
		pct := 0.0
		if rep.ROI > 0 {
			pct = 100 * float64(ph.Total) / float64(rep.ROI)
		}
		fmt.Fprintf(w, "  phase %-16s %12v  calls=%-10d %5.1f%%\n",
			ph.Name, ph.Total.Round(time.Microsecond), ph.Calls, pct)
	}
	if rep.Steps.Count > 0 {
		fmt.Fprintf(w, "  steps %-16d p50=%v p95=%v p99=%v max=%v\n",
			rep.Steps.Count,
			rep.Steps.P50.Round(time.Microsecond), rep.Steps.P95.Round(time.Microsecond),
			rep.Steps.P99.Round(time.Microsecond), rep.Steps.Max.Round(time.Microsecond))
		if rep.Steps.Deadline > 0 {
			missPct := 100 * float64(rep.Steps.Misses) / float64(rep.Steps.Count)
			fmt.Fprintf(w, "  deadline %v: %d misses (%.1f%%)\n",
				rep.Steps.Deadline, rep.Steps.Misses, missPct)
		}
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-22s %v\n", k, metrics[k])
	}
}
