// Command rtrbench runs one RTRBench-Go kernel with a fully flag-settable
// configuration, mirroring the original suite's per-kernel binaries
// (paper §VI, Fig. 20: "all of the configuration/execution parameters can
// be set/changed from the command line", with proper defaults).
//
// Usage:
//
//	rtrbench <kernel> [flags]
//	rtrbench suite [flags]
//	rtrbench stream [flags]
//	rtrbench verify [flags]
//	rtrbench list
//	rtrbench <kernel> --help
//
// Examples:
//
//	rtrbench rrt --samples 30000 --bias 0.1 --radius 0.9 --map mapc
//	rtrbench pfl --particles 5000 --steps 200 --region 3
//	rtrbench movtar --size 384 --epsilon 3
//	rtrbench suite --trials 5 --warmup 1 --parallel 8 --timeout 60s
//	rtrbench stream -kernel pfl -period 2ms -deadline 2ms -duration 1s
//
// Every kernel additionally accepts the shared observability flags:
//
//	--format text|json|csv|trace   report format (trace loads in Perfetto)
//	--out FILE                     write the report to a file
//	--deadline DUR                 per-step real-time deadline, e.g. 10ms
//	--timeout DUR                  abort the run after this wall-clock budget
//	--steplat                      step-latency histogram without a deadline
//	--cpuprofile FILE              Go CPU profile of the run
//	--memprofile FILE              heap profile at exit
//	--httpdebug ADDR               live net/http/pprof + /metrics server
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/arm"
	"repro/internal/core/bo"
	"repro/internal/core/cem"
	"repro/internal/core/dmp"
	"repro/internal/core/ekfslam"
	"repro/internal/core/movtar"
	"repro/internal/core/mpc"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/core/pp3d"
	"repro/internal/core/prm"
	"repro/internal/core/rrt"
	"repro/internal/core/srec"
	"repro/internal/core/sym"
	"repro/internal/grid"
	"repro/internal/profile"
	"repro/internal/search"
	"repro/rtrbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	kernel := os.Args[1]
	args := os.Args[2:]

	switch kernel {
	case "list":
		listKernels()
		return
	case "suite":
		if err := runSuite(args); err != nil {
			fmt.Fprintf(os.Stderr, "rtrbench suite: %v\n", err)
			os.Exit(1)
		}
		return
	case "stream":
		if err := runStream(args); err != nil {
			fmt.Fprintf(os.Stderr, "rtrbench stream: %v\n", err)
			os.Exit(1)
		}
		return
	case "verify":
		if err := runVerify(args); err != nil {
			fmt.Fprintf(os.Stderr, "rtrbench verify: %v\n", err)
			os.Exit(1)
		}
		return
	case "-h", "--help", "help":
		usage()
		return
	}

	runner, ok := runners[kernel]
	if !ok {
		fmt.Fprintf(os.Stderr, "rtrbench: unknown kernel %q\n\n", kernel)
		usage()
		os.Exit(2)
	}
	if err := runner(args); err != nil {
		fmt.Fprintf(os.Stderr, "rtrbench %s: %v\n", kernel, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("USAGE:\n  rtrbench <kernel> [OPTIONS]\n  rtrbench suite [OPTIONS]\n  rtrbench stream [OPTIONS]\n  rtrbench verify [OPTIONS]\n  rtrbench list\n\nKERNELS:")
	listKernels()
	fmt.Println("\nRun `rtrbench <kernel> --help` for the kernel's options.")
}

func listKernels() {
	for _, k := range rtrbench.Kernels() {
		fmt.Printf("  %02d.%-10s %-10s %s\n", k.Index, k.Name, k.Stage, k.Description)
	}
}

func loadMap2D(path string) (*grid.Grid2D, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return grid.ParseMovingAI(f)
}

func armWorkspace(name string) *arm.Workspace {
	if name == "mapf" {
		return arm.MapF()
	}
	return arm.MapC()
}

type runner func(args []string) error

var runners = map[string]runner{
	"pfl": func(args []string) error {
		h := newHarness("pfl")
		cfg := pfl.DefaultConfig()
		h.fs.IntVar(&cfg.Particles, "particles", cfg.Particles, "particle population size")
		h.fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "motion/measurement cycles")
		h.fs.IntVar(&cfg.Region, "region", cfg.Region, "building region to start in (0-4)")
		h.fs.IntVar(&cfg.Laser.NumBeams, "beams", cfg.Laser.NumBeams, "laser beams per scan")
		h.fs.Float64Var(&cfg.Laser.MaxRange, "range", cfg.Laser.MaxRange, "laser max range, m")
		h.fs.Float64Var(&cfg.StepLen, "steplen", cfg.StepLen, "commanded step length, m")
		h.fs.IntVar(&cfg.InitFactor, "initfactor", cfg.InitFactor, "initial population over-provisioning")
		h.fs.IntVar(&cfg.Workers, "workers", cfg.Workers, "goroutines for the measurement update (0/1 = serial)")
		h.fs.BoolVar(&cfg.LikelihoodField, "likelihoodfield", cfg.LikelihoodField, "use the likelihood-field sensor model (no ray casting)")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapPath := h.fs.String("map", "", "Moving AI map file (default: synthetic building)")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		if *mapPath != "" {
			g, err := loadMap2D(*mapPath)
			if err != nil {
				return err
			}
			g.Resolution = 0.25
			cfg.Map = g
		}
		p := h.newProfile()
		res, err := pfl.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"position_error_m": res.PositionError,
			"heading_error":    res.HeadingError,
			"raycasts":         res.Raycasts,
			"cells_visited":    res.CellsVisited,
		})
	},

	"ekfslam": func(args []string) error {
		h := newHarness("ekfslam")
		cfg := ekfslam.DefaultConfig()
		h.fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "simulation steps")
		h.fs.Float64Var(&cfg.Dt, "dt", cfg.Dt, "step period, s")
		h.fs.Float64Var(&cfg.V, "v", cfg.V, "forward velocity, m/s")
		h.fs.Float64Var(&cfg.Omega, "omega", cfg.Omega, "angular velocity, rad/s")
		h.fs.Float64Var(&cfg.Sensor.SigmaRange, "sigr", cfg.Sensor.SigmaRange, "range noise std")
		h.fs.Float64Var(&cfg.Sensor.SigmaBear, "sigb", cfg.Sensor.SigmaBear, "bearing noise std")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := ekfslam.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"pose_error_m":     res.PoseError,
			"landmark_error_m": res.MeanLandmarkError,
			"landmarks_seen":   res.LandmarksSeen,
			"updates":          res.Updates,
		})
	},

	"srec": func(args []string) error {
		h := newHarness("srec")
		cfg := srec.DefaultConfig()
		h.fs.IntVar(&cfg.Cols, "cols", cfg.Cols, "depth image columns")
		h.fs.IntVar(&cfg.Rows, "rows", cfg.Rows, "depth image rows")
		h.fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "max ICP iterations")
		h.fs.Float64Var(&cfg.SensorNoise, "noise", cfg.SensorNoise, "depth noise std, m")
		h.fs.Float64Var(&cfg.VoxelSize, "voxel", cfg.VoxelSize, "downsample voxel size (0 = off)")
		method := h.fs.String("method", "point", "ICP metric: point | plane")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		cfg.Method = srec.Method(*method)
		p := h.newProfile()
		res, err := srec.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"rmse_m":        res.RMSE,
			"rot_error":     res.RotationError,
			"trans_error_m": res.TranslationError,
			"iterations":    res.Iterations,
			"points":        res.SourcePoints,
		})
	},

	"pp2d": func(args []string) error {
		h := newHarness("pp2d")
		cfg := pp2d.DefaultConfig()
		size := h.fs.Int("size", 512, "synthetic city edge, cells")
		h.fs.Float64Var(&cfg.CarLength, "length", cfg.CarLength, "car length, m")
		h.fs.Float64Var(&cfg.CarWidth, "width", cfg.CarWidth, "car width, m")
		h.fs.Float64Var(&cfg.Weight, "weight", cfg.Weight, "heuristic inflation")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapPath := h.fs.String("map", "", "Moving AI map file (default: synthetic city)")
		scenPath := h.fs.String("scen", "", "Moving AI .scen file: batch-run its problems (requires --map)")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		if *mapPath != "" {
			g, err := loadMap2D(*mapPath)
			if err != nil {
				return err
			}
			g.Resolution = 0.5
			cfg.Map = g
		} else {
			cfg.Map = pp2d.DefaultMap(*size, cfg.Seed)
		}
		if *scenPath != "" {
			return runScenBatch(cfg.Map, *scenPath)
		}
		p := h.newProfile()
		res, err := pp2d.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"found":            res.Found,
			"path_length_m":    res.PathLength,
			"expanded":         res.Expanded,
			"collision_checks": res.Checks,
			"cells_touched":    res.Cells,
		})
	},

	"pp3d": func(args []string) error {
		h := newHarness("pp3d")
		cfg := pp3d.DefaultConfig()
		w := h.fs.Int("w", 160, "campus width, voxels")
		hgt := h.fs.Int("h", 160, "campus depth, voxels")
		d := h.fs.Int("d", 24, "campus height, voxels")
		h.fs.IntVar(&cfg.Radius, "radius", cfg.Radius, "UAV radius, voxels (0 = point)")
		h.fs.Float64Var(&cfg.Weight, "weight", cfg.Weight, "heuristic inflation")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		cfg.Map = pp3d.DefaultMap(*w, *hgt, *d, cfg.Seed)
		p := h.newProfile()
		res, err := pp3d.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"found":            res.Found,
			"path_length":      res.PathLength,
			"expanded":         res.Expanded,
			"collision_checks": res.Checks,
		})
	},

	"movtar": func(args []string) error {
		h := newHarness("movtar")
		cfg := movtar.DefaultConfig()
		h.fs.IntVar(&cfg.Size, "size", cfg.Size, "terrain edge, cells")
		h.fs.Float64Var(&cfg.Epsilon, "epsilon", cfg.Epsilon, "WA* inflation")
		h.fs.IntVar(&cfg.TargetPeriod, "period", cfg.TargetPeriod, "robot steps per target step")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := movtar.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"found":      res.Found,
			"catch_time": res.CatchTime,
			"path_cost":  res.PathCost,
			"expanded":   res.Expanded,
		})
	},

	"prm": func(args []string) error {
		h := newHarness("prm")
		cfg := prm.DefaultConfig()
		h.fs.IntVar(&cfg.Samples, "samples", cfg.Samples, "roadmap samples")
		h.fs.IntVar(&cfg.K, "k", cfg.K, "neighbors to connect")
		h.fs.BoolVar(&cfg.Lazy, "lazy", cfg.Lazy, "Lazy PRM: defer edge collision checks to query time")
		h.fs.Float64Var(&cfg.EdgeStep, "edgestep", cfg.EdgeStep, "edge collision step, rad")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapName := h.fs.String("map", "mapc", "workspace: mapc | mapf")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		cfg.Workspace = armWorkspace(*mapName)
		p := h.newProfile()
		res, err := prm.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"found":         res.Found,
			"path_cost_rad": res.PathCost,
			"roadmap_nodes": res.RoadmapNodes,
			"roadmap_edges": res.RoadmapEdges,
			"l2_norms":      res.L2Norms,
		})
	},

	"rrt":     rrtRunner("rrt", rrt.Run),
	"rrtstar": rrtRunner("rrtstar", rrt.RunStar),
	"rrtpp":   rrtRunner("rrtpp", rrt.RunPP),

	"sym-blkw": func(args []string) error {
		h := newHarness("sym-blkw")
		cfg := sym.DefaultConfig(sym.BlocksWorld)
		h.fs.IntVar(&cfg.Blocks, "blocks", cfg.Blocks, "tower height")
		h.fs.IntVar(&cfg.MaxExpansions, "maxexp", cfg.MaxExpansions, "expansion cap (0 = off)")
		h.fs.BoolVar(&cfg.Additive, "hadd", cfg.Additive, "use the additive (h_add) heuristic")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		return runSym(h, cfg)
	},

	"sym-fext": func(args []string) error {
		h := newHarness("sym-fext")
		cfg := sym.DefaultConfig(sym.Firefighter)
		h.fs.IntVar(&cfg.Locations, "locations", cfg.Locations, "number of locations")
		h.fs.IntVar(&cfg.Pours, "pours", cfg.Pours, "pours to extinguish the fire")
		h.fs.IntVar(&cfg.MaxExpansions, "maxexp", cfg.MaxExpansions, "expansion cap (0 = off)")
		h.fs.BoolVar(&cfg.Additive, "hadd", cfg.Additive, "use the additive (h_add) heuristic")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		return runSym(h, cfg)
	},

	"dmp": func(args []string) error {
		h := newHarness("dmp")
		cfg := dmp.DefaultConfig()
		h.fs.IntVar(&cfg.Basis, "basis", cfg.Basis, "Gaussian basis functions")
		h.fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "rollout steps")
		h.fs.Float64Var(&cfg.Tau, "tau", cfg.Tau, "temporal scaling")
		h.fs.Float64Var(&cfg.K, "k", cfg.K, "spring gain")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := dmp.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"track_rmse_m":     res.TrackRMSE,
			"endpoint_error_m": res.EndpointError,
			"serial_steps":     res.SerialSteps,
		})
	},

	"mpc": func(args []string) error {
		h := newHarness("mpc")
		cfg := mpc.DefaultConfig()
		h.fs.IntVar(&cfg.Horizon, "horizon", cfg.Horizon, "lookahead steps")
		h.fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "closed-loop steps")
		h.fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "solver iterations per step")
		h.fs.Float64Var(&cfg.VMax, "vmax", cfg.VMax, "velocity cap, m/s")
		h.fs.Float64Var(&cfg.AMax, "amax", cfg.AMax, "acceleration cap, m/s²")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := mpc.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"track_rmse_m":    res.TrackRMSE,
			"max_deviation_m": res.MaxDeviation,
			"vel_violations":  res.VelViolations,
			"rollouts":        res.Rollouts,
		})
	},

	"cem": func(args []string) error {
		h := newHarness("cem")
		cfg := cem.DefaultConfig()
		h.fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "learning iterations")
		h.fs.IntVar(&cfg.SamplesPerIter, "samples", cfg.SamplesPerIter, "samples per iteration")
		h.fs.IntVar(&cfg.Elite, "elite", cfg.Elite, "elite set size")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := cem.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"best_reward": res.BestReward,
			"evals":       res.Evals,
		})
	},

	"bo": func(args []string) error {
		h := newHarness("bo")
		cfg := bo.DefaultConfig()
		h.fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "BO iterations")
		h.fs.IntVar(&cfg.Candidates, "candidates", cfg.Candidates, "acquisition pool size")
		h.fs.Float64Var(&cfg.Beta, "beta", cfg.Beta, "UCB exploration weight")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		p := h.newProfile()
		res, err := bo.Run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"best_reward": res.BestReward,
			"evals":       res.Evals,
			"gp_fits":     res.GPFits,
		})
	},
}

// runScenBatch runs every problem of a Moving AI scenario file with the
// suite's point A* and validates the measured optimal costs against the
// published ones — the standard way to certify a grid planner against the
// Moving AI benchmark ecosystem.
func runScenBatch(g *grid.Grid2D, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scens, err := grid.ParseScen(f)
	if err != nil {
		return err
	}
	sp := &search.Grid2DSpace{G: g}
	solved, matched := 0, 0
	start := time.Now()
	for i, s := range scens {
		sx, sy := s.StartCell(g.H)
		gx, gy := s.GoalCell(g.H)
		res, err := search.Solve(search.Problem{
			Space: sp,
			Start: sp.ID(sx, sy),
			Goal:  sp.ID(gx, gy),
			H:     sp.OctileHeuristic(gx, gy),
		})
		if err != nil {
			fmt.Printf("  scen %d: no path (published optimum %.4f)\n", i, s.OptimalLength)
			continue
		}
		solved++
		if diff := res.Cost - s.OptimalLength; diff < 1e-4 && diff > -1e-4 {
			matched++
		} else {
			fmt.Printf("  scen %d: cost %.6f != published %.6f\n", i, res.Cost, s.OptimalLength)
		}
	}
	fmt.Printf("scen batch: %d problems, %d solved, %d matched published optima, %v total\n",
		len(scens), solved, matched, time.Since(start).Round(time.Millisecond))
	return nil
}

func rrtRunner(name string, run func(context.Context, rrt.Config, *profile.Profile) (rrt.Result, error)) runner {
	return func(args []string) error {
		h := newHarness(name)
		cfg := rrt.DefaultConfig()
		// Flag names follow the original kernel's CLI (paper Fig. 20).
		h.fs.Float64Var(&cfg.Bias, "bias", cfg.Bias, "random number generation bias (goal bias)")
		h.fs.Float64Var(&cfg.Epsilon, "epsilon", cfg.Epsilon, "epsilon (minimum movement)")
		h.fs.Float64Var(&cfg.Radius, "radius", cfg.Radius, "neighborhood distance")
		h.fs.IntVar(&cfg.MaxSamples, "samples", cfg.MaxSamples, "maximum samples")
		h.fs.IntVar(&cfg.ShortcutIters, "shortcuts", cfg.ShortcutIters, "post-processing shortcut iterations")
		h.fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapName := h.fs.String("map", "mapc", "workspace: mapc | mapf")
		if err := h.parse(args); err != nil {
			return err
		}
		defer h.close()
		cfg.Workspace = armWorkspace(*mapName)
		p := h.newProfile()
		res, err := run(h.ctx(), cfg, p)
		if err != nil {
			return err
		}
		return h.report(p, map[string]interface{}{
			"found":         res.Found,
			"path_cost_rad": res.PathCost,
			"samples":       res.Samples,
			"tree_nodes":    res.TreeNodes,
			"rewires":       res.Rewires,
			"shortcuts":     res.Shortcuts,
		})
	}
}

func runSym(h *harness, cfg sym.Config) error {
	p := h.newProfile()
	res, err := sym.Run(h.ctx(), cfg, p)
	if err != nil {
		return err
	}
	if err := h.report(p, map[string]interface{}{
		"found":          res.Found,
		"plan_length":    res.PlanLength,
		"expanded":       res.Stats.Expanded,
		"avg_branching":  res.Stats.AvgBranching(),
		"string_bytes":   res.Stats.StringBytes,
		"ground_actions": res.GroundActions,
	}); err != nil {
		return err
	}
	if h.format == "text" && h.out == "" {
		for i, step := range res.Plan {
			fmt.Printf("  %2d. %s\n", i+1, step)
		}
	}
	return nil
}
