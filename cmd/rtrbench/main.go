// Command rtrbench runs one RTRBench-Go kernel with a fully flag-settable
// configuration, mirroring the original suite's per-kernel binaries
// (paper §VI, Fig. 20: "all of the configuration/execution parameters can
// be set/changed from the command line", with proper defaults).
//
// Usage:
//
//	rtrbench <kernel> [flags]
//	rtrbench list
//	rtrbench <kernel> --help
//
// Examples:
//
//	rtrbench rrt --samples 30000 --bias 0.1 --radius 0.9 --map mapc
//	rtrbench pfl --particles 5000 --steps 200 --region 3
//	rtrbench movtar --size 384 --epsilon 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/arm"
	"repro/internal/core/bo"
	"repro/internal/core/cem"
	"repro/internal/core/dmp"
	"repro/internal/core/ekfslam"
	"repro/internal/core/movtar"
	"repro/internal/core/mpc"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/core/pp3d"
	"repro/internal/core/prm"
	"repro/internal/core/rrt"
	"repro/internal/core/srec"
	"repro/internal/core/sym"
	"repro/internal/grid"
	"repro/internal/profile"
	"repro/internal/search"
	"repro/rtrbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	kernel := os.Args[1]
	args := os.Args[2:]

	switch kernel {
	case "list":
		listKernels()
		return
	case "-h", "--help", "help":
		usage()
		return
	}

	runner, ok := runners[kernel]
	if !ok {
		fmt.Fprintf(os.Stderr, "rtrbench: unknown kernel %q\n\n", kernel)
		usage()
		os.Exit(2)
	}
	if err := runner(args); err != nil {
		fmt.Fprintf(os.Stderr, "rtrbench %s: %v\n", kernel, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Println("USAGE:\n  rtrbench <kernel> [OPTIONS]\n  rtrbench list\n\nKERNELS:")
	listKernels()
	fmt.Println("\nRun `rtrbench <kernel> --help` for the kernel's options.")
}

func listKernels() {
	for _, k := range rtrbench.Kernels() {
		fmt.Printf("  %02d.%-10s %-10s %s\n", k.Index, k.Name, k.Stage, k.Description)
	}
}

// report prints the harness profile and kernel metrics after a run.
func report(p *profile.Profile, metrics map[string]interface{}) {
	rep := p.Snapshot()
	fmt.Printf("ROI: %v\n", rep.ROI.Round(time.Microsecond))
	for _, ph := range rep.Phases {
		pct := 0.0
		if rep.ROI > 0 {
			pct = 100 * float64(ph.Total) / float64(rep.ROI)
		}
		fmt.Printf("  phase %-16s %12v  calls=%-10d %5.1f%%\n",
			ph.Name, ph.Total.Round(time.Microsecond), ph.Calls, pct)
	}
	keys := make([]string, 0, len(metrics))
	for k := range metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-22s %v\n", k, metrics[k])
	}
}

func loadMap2D(path string) (*grid.Grid2D, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return grid.ParseMovingAI(f)
}

func armWorkspace(name string) *arm.Workspace {
	if name == "mapf" {
		return arm.MapF()
	}
	return arm.MapC()
}

type runner func(args []string) error

var runners = map[string]runner{
	"pfl": func(args []string) error {
		fs := flag.NewFlagSet("pfl", flag.ExitOnError)
		cfg := pfl.DefaultConfig()
		fs.IntVar(&cfg.Particles, "particles", cfg.Particles, "particle population size")
		fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "motion/measurement cycles")
		fs.IntVar(&cfg.Region, "region", cfg.Region, "building region to start in (0-4)")
		fs.IntVar(&cfg.Laser.NumBeams, "beams", cfg.Laser.NumBeams, "laser beams per scan")
		fs.Float64Var(&cfg.Laser.MaxRange, "range", cfg.Laser.MaxRange, "laser max range, m")
		fs.Float64Var(&cfg.StepLen, "steplen", cfg.StepLen, "commanded step length, m")
		fs.IntVar(&cfg.InitFactor, "initfactor", cfg.InitFactor, "initial population over-provisioning")
		fs.IntVar(&cfg.Workers, "workers", cfg.Workers, "goroutines for the measurement update (0/1 = serial)")
		fs.BoolVar(&cfg.LikelihoodField, "likelihoodfield", cfg.LikelihoodField, "use the likelihood-field sensor model (no ray casting)")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapPath := fs.String("map", "", "Moving AI map file (default: synthetic building)")
		fs.Parse(args)
		if *mapPath != "" {
			g, err := loadMap2D(*mapPath)
			if err != nil {
				return err
			}
			g.Resolution = 0.25
			cfg.Map = g
		}
		p := profile.New()
		res, err := pfl.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"position_error_m": res.PositionError,
			"heading_error":    res.HeadingError,
			"raycasts":         res.Raycasts,
			"cells_visited":    res.CellsVisited,
		})
		return nil
	},

	"ekfslam": func(args []string) error {
		fs := flag.NewFlagSet("ekfslam", flag.ExitOnError)
		cfg := ekfslam.DefaultConfig()
		fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "simulation steps")
		fs.Float64Var(&cfg.Dt, "dt", cfg.Dt, "step period, s")
		fs.Float64Var(&cfg.V, "v", cfg.V, "forward velocity, m/s")
		fs.Float64Var(&cfg.Omega, "omega", cfg.Omega, "angular velocity, rad/s")
		fs.Float64Var(&cfg.Sensor.SigmaRange, "sigr", cfg.Sensor.SigmaRange, "range noise std")
		fs.Float64Var(&cfg.Sensor.SigmaBear, "sigb", cfg.Sensor.SigmaBear, "bearing noise std")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		p := profile.New()
		res, err := ekfslam.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"pose_error_m":     res.PoseError,
			"landmark_error_m": res.MeanLandmarkError,
			"landmarks_seen":   res.LandmarksSeen,
			"updates":          res.Updates,
		})
		return nil
	},

	"srec": func(args []string) error {
		fs := flag.NewFlagSet("srec", flag.ExitOnError)
		cfg := srec.DefaultConfig()
		fs.IntVar(&cfg.Cols, "cols", cfg.Cols, "depth image columns")
		fs.IntVar(&cfg.Rows, "rows", cfg.Rows, "depth image rows")
		fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "max ICP iterations")
		fs.Float64Var(&cfg.SensorNoise, "noise", cfg.SensorNoise, "depth noise std, m")
		fs.Float64Var(&cfg.VoxelSize, "voxel", cfg.VoxelSize, "downsample voxel size (0 = off)")
		method := fs.String("method", "point", "ICP metric: point | plane")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		cfg.Method = srec.Method(*method)
		p := profile.New()
		res, err := srec.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"rmse_m":        res.RMSE,
			"rot_error":     res.RotationError,
			"trans_error_m": res.TranslationError,
			"iterations":    res.Iterations,
			"points":        res.SourcePoints,
		})
		return nil
	},

	"pp2d": func(args []string) error {
		fs := flag.NewFlagSet("pp2d", flag.ExitOnError)
		cfg := pp2d.DefaultConfig()
		size := fs.Int("size", 512, "synthetic city edge, cells")
		fs.Float64Var(&cfg.CarLength, "length", cfg.CarLength, "car length, m")
		fs.Float64Var(&cfg.CarWidth, "width", cfg.CarWidth, "car width, m")
		fs.Float64Var(&cfg.Weight, "weight", cfg.Weight, "heuristic inflation")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapPath := fs.String("map", "", "Moving AI map file (default: synthetic city)")
		scenPath := fs.String("scen", "", "Moving AI .scen file: batch-run its problems (requires --map)")
		fs.Parse(args)
		if *mapPath != "" {
			g, err := loadMap2D(*mapPath)
			if err != nil {
				return err
			}
			g.Resolution = 0.5
			cfg.Map = g
		} else {
			cfg.Map = pp2d.DefaultMap(*size, cfg.Seed)
		}
		if *scenPath != "" {
			return runScenBatch(cfg.Map, *scenPath)
		}
		p := profile.New()
		res, err := pp2d.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"found":            res.Found,
			"path_length_m":    res.PathLength,
			"expanded":         res.Expanded,
			"collision_checks": res.Checks,
			"cells_touched":    res.Cells,
		})
		return nil
	},

	"pp3d": func(args []string) error {
		fs := flag.NewFlagSet("pp3d", flag.ExitOnError)
		cfg := pp3d.DefaultConfig()
		w := fs.Int("w", 160, "campus width, voxels")
		h := fs.Int("h", 160, "campus depth, voxels")
		d := fs.Int("d", 24, "campus height, voxels")
		fs.IntVar(&cfg.Radius, "radius", cfg.Radius, "UAV radius, voxels (0 = point)")
		fs.Float64Var(&cfg.Weight, "weight", cfg.Weight, "heuristic inflation")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		cfg.Map = pp3d.DefaultMap(*w, *h, *d, cfg.Seed)
		p := profile.New()
		res, err := pp3d.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"found":            res.Found,
			"path_length":      res.PathLength,
			"expanded":         res.Expanded,
			"collision_checks": res.Checks,
		})
		return nil
	},

	"movtar": func(args []string) error {
		fs := flag.NewFlagSet("movtar", flag.ExitOnError)
		cfg := movtar.DefaultConfig()
		fs.IntVar(&cfg.Size, "size", cfg.Size, "terrain edge, cells")
		fs.Float64Var(&cfg.Epsilon, "epsilon", cfg.Epsilon, "WA* inflation")
		fs.IntVar(&cfg.TargetPeriod, "period", cfg.TargetPeriod, "robot steps per target step")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		p := profile.New()
		res, err := movtar.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"found":      res.Found,
			"catch_time": res.CatchTime,
			"path_cost":  res.PathCost,
			"expanded":   res.Expanded,
		})
		return nil
	},

	"prm": func(args []string) error {
		fs := flag.NewFlagSet("prm", flag.ExitOnError)
		cfg := prm.DefaultConfig()
		fs.IntVar(&cfg.Samples, "samples", cfg.Samples, "roadmap samples")
		fs.IntVar(&cfg.K, "k", cfg.K, "neighbors to connect")
		fs.BoolVar(&cfg.Lazy, "lazy", cfg.Lazy, "Lazy PRM: defer edge collision checks to query time")
		fs.Float64Var(&cfg.EdgeStep, "edgestep", cfg.EdgeStep, "edge collision step, rad")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapName := fs.String("map", "mapc", "workspace: mapc | mapf")
		fs.Parse(args)
		cfg.Workspace = armWorkspace(*mapName)
		p := profile.New()
		res, err := prm.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"found":         res.Found,
			"path_cost_rad": res.PathCost,
			"roadmap_nodes": res.RoadmapNodes,
			"roadmap_edges": res.RoadmapEdges,
			"l2_norms":      res.L2Norms,
		})
		return nil
	},

	"rrt":     rrtRunner("rrt", rrt.Run),
	"rrtstar": rrtRunner("rrtstar", rrt.RunStar),
	"rrtpp":   rrtRunner("rrtpp", rrt.RunPP),

	"sym-blkw": func(args []string) error {
		fs := flag.NewFlagSet("sym-blkw", flag.ExitOnError)
		cfg := sym.DefaultConfig(sym.BlocksWorld)
		fs.IntVar(&cfg.Blocks, "blocks", cfg.Blocks, "tower height")
		fs.IntVar(&cfg.MaxExpansions, "maxexp", cfg.MaxExpansions, "expansion cap (0 = off)")
		fs.BoolVar(&cfg.Additive, "hadd", cfg.Additive, "use the additive (h_add) heuristic")
		fs.Parse(args)
		return runSym(cfg)
	},

	"sym-fext": func(args []string) error {
		fs := flag.NewFlagSet("sym-fext", flag.ExitOnError)
		cfg := sym.DefaultConfig(sym.Firefighter)
		fs.IntVar(&cfg.Locations, "locations", cfg.Locations, "number of locations")
		fs.IntVar(&cfg.Pours, "pours", cfg.Pours, "pours to extinguish the fire")
		fs.IntVar(&cfg.MaxExpansions, "maxexp", cfg.MaxExpansions, "expansion cap (0 = off)")
		fs.BoolVar(&cfg.Additive, "hadd", cfg.Additive, "use the additive (h_add) heuristic")
		fs.Parse(args)
		return runSym(cfg)
	},

	"dmp": func(args []string) error {
		fs := flag.NewFlagSet("dmp", flag.ExitOnError)
		cfg := dmp.DefaultConfig()
		fs.IntVar(&cfg.Basis, "basis", cfg.Basis, "Gaussian basis functions")
		fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "rollout steps")
		fs.Float64Var(&cfg.Tau, "tau", cfg.Tau, "temporal scaling")
		fs.Float64Var(&cfg.K, "k", cfg.K, "spring gain")
		fs.Parse(args)
		p := profile.New()
		res, err := dmp.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"track_rmse_m":     res.TrackRMSE,
			"endpoint_error_m": res.EndpointError,
			"serial_steps":     res.SerialSteps,
		})
		return nil
	},

	"mpc": func(args []string) error {
		fs := flag.NewFlagSet("mpc", flag.ExitOnError)
		cfg := mpc.DefaultConfig()
		fs.IntVar(&cfg.Horizon, "horizon", cfg.Horizon, "lookahead steps")
		fs.IntVar(&cfg.Steps, "steps", cfg.Steps, "closed-loop steps")
		fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "solver iterations per step")
		fs.Float64Var(&cfg.VMax, "vmax", cfg.VMax, "velocity cap, m/s")
		fs.Float64Var(&cfg.AMax, "amax", cfg.AMax, "acceleration cap, m/s²")
		fs.Parse(args)
		p := profile.New()
		res, err := mpc.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"track_rmse_m":    res.TrackRMSE,
			"max_deviation_m": res.MaxDeviation,
			"vel_violations":  res.VelViolations,
			"rollouts":        res.Rollouts,
		})
		return nil
	},

	"cem": func(args []string) error {
		fs := flag.NewFlagSet("cem", flag.ExitOnError)
		cfg := cem.DefaultConfig()
		fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "learning iterations")
		fs.IntVar(&cfg.SamplesPerIter, "samples", cfg.SamplesPerIter, "samples per iteration")
		fs.IntVar(&cfg.Elite, "elite", cfg.Elite, "elite set size")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		p := profile.New()
		res, err := cem.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"best_reward": res.BestReward,
			"evals":       res.Evals,
		})
		return nil
	},

	"bo": func(args []string) error {
		fs := flag.NewFlagSet("bo", flag.ExitOnError)
		cfg := bo.DefaultConfig()
		fs.IntVar(&cfg.Iterations, "iters", cfg.Iterations, "BO iterations")
		fs.IntVar(&cfg.Candidates, "candidates", cfg.Candidates, "acquisition pool size")
		fs.Float64Var(&cfg.Beta, "beta", cfg.Beta, "UCB exploration weight")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		fs.Parse(args)
		p := profile.New()
		res, err := bo.Run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"best_reward": res.BestReward,
			"evals":       res.Evals,
			"gp_fits":     res.GPFits,
		})
		return nil
	},
}

// runScenBatch runs every problem of a Moving AI scenario file with the
// suite's point A* and validates the measured optimal costs against the
// published ones — the standard way to certify a grid planner against the
// Moving AI benchmark ecosystem.
func runScenBatch(g *grid.Grid2D, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scens, err := grid.ParseScen(f)
	if err != nil {
		return err
	}
	sp := &search.Grid2DSpace{G: g}
	solved, matched := 0, 0
	start := time.Now()
	for i, s := range scens {
		sx, sy := s.StartCell(g.H)
		gx, gy := s.GoalCell(g.H)
		res, err := search.Solve(search.Problem{
			Space: sp,
			Start: sp.ID(sx, sy),
			Goal:  sp.ID(gx, gy),
			H:     sp.OctileHeuristic(gx, gy),
		})
		if err != nil {
			fmt.Printf("  scen %d: no path (published optimum %.4f)\n", i, s.OptimalLength)
			continue
		}
		solved++
		if diff := res.Cost - s.OptimalLength; diff < 1e-4 && diff > -1e-4 {
			matched++
		} else {
			fmt.Printf("  scen %d: cost %.6f != published %.6f\n", i, res.Cost, s.OptimalLength)
		}
	}
	fmt.Printf("scen batch: %d problems, %d solved, %d matched published optima, %v total\n",
		len(scens), solved, matched, time.Since(start).Round(time.Millisecond))
	return nil
}

func rrtRunner(name string, run func(rrt.Config, *profile.Profile) (rrt.Result, error)) runner {
	return func(args []string) error {
		fs := flag.NewFlagSet(name, flag.ExitOnError)
		cfg := rrt.DefaultConfig()
		// Flag names follow the original kernel's CLI (paper Fig. 20).
		fs.Float64Var(&cfg.Bias, "bias", cfg.Bias, "random number generation bias (goal bias)")
		fs.Float64Var(&cfg.Epsilon, "epsilon", cfg.Epsilon, "epsilon (minimum movement)")
		fs.Float64Var(&cfg.Radius, "radius", cfg.Radius, "neighborhood distance")
		fs.IntVar(&cfg.MaxSamples, "samples", cfg.MaxSamples, "maximum samples")
		fs.IntVar(&cfg.ShortcutIters, "shortcuts", cfg.ShortcutIters, "post-processing shortcut iterations")
		fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
		mapName := fs.String("map", "mapc", "workspace: mapc | mapf")
		fs.Parse(args)
		cfg.Workspace = armWorkspace(*mapName)
		p := profile.New()
		res, err := run(cfg, p)
		if err != nil {
			return err
		}
		report(p, map[string]interface{}{
			"found":         res.Found,
			"path_cost_rad": res.PathCost,
			"samples":       res.Samples,
			"tree_nodes":    res.TreeNodes,
			"rewires":       res.Rewires,
			"shortcuts":     res.Shortcuts,
		})
		return nil
	}
}

func runSym(cfg sym.Config) error {
	p := profile.New()
	res, err := sym.Run(cfg, p)
	if err != nil {
		return err
	}
	report(p, map[string]interface{}{
		"found":          res.Found,
		"plan_length":    res.PlanLength,
		"expanded":       res.Stats.Expanded,
		"avg_branching":  res.Stats.AvgBranching(),
		"string_bytes":   res.Stats.StringBytes,
		"ground_actions": res.GroundActions,
	})
	for i, step := range res.Plan {
		fmt.Printf("  %2d. %s\n", i+1, step)
	}
	return nil
}
