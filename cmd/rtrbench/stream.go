package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/rtrbench"
)

// runStream implements `rtrbench stream`: one registered kernel driven as a
// long-lived periodic real-time task with per-tick release/deadline
// accounting (latency, jitter, hit/miss) and a selectable overload policy.
func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	var (
		kernel    = fs.String("kernel", "", "registered kernel to stream (required; see `rtrbench list`)")
		period    = fs.Duration("period", 0, "tick release interval (required, e.g. 2ms)")
		deadline  = fs.Duration("deadline", 0, "relative per-tick deadline; 0 = the period (implicit deadline)")
		duration  = fs.Duration("duration", 0, "stream length in wall time (e.g. 1s); set this or -ticks")
		maxTicks  = fs.Int64("ticks", 0, "stream length in executed ticks; set this or -duration")
		policy    = fs.String("policy", "skip-next", "overload policy: skip-next | queue | anytime-cutoff")
		workers   = fs.Int("workers", 0, "intra-kernel worker goroutines for the kernels that support it; 0 = serial")
		size      = fs.String("size", "small", "workload size: small | default")
		seed      = fs.Int64("seed", 1, "base random seed (workload run r streams with seed+r)")
		format    = fs.String("format", "text", "report format: text | json | csv")
		out       = fs.String("out", "", "write the report to this file instead of stdout")
		httpdebug = fs.String("httpdebug", "", "serve net/http/pprof and live rtrbench_stream_* /metrics on this address while streaming")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := rtrbench.StreamOptions{
		Options: rtrbench.Options{
			Seed:    *seed,
			Workers: *workers,
		},
		Kernel:   *kernel,
		Period:   *period,
		Deadline: *deadline,
		Duration: *duration,
		MaxTicks: *maxTicks,
	}
	switch *size {
	case "small":
		opts.Size = rtrbench.SizeSmall
	case "default":
		opts.Size = rtrbench.SizeDefault
	default:
		return fmt.Errorf("unknown --size %q (want small or default)", *size)
	}
	p, err := parseStreamPolicy(*policy)
	if err != nil {
		return err
	}
	opts.Policy = p

	if *httpdebug != "" {
		dbg, err := obs.StartDebug(*httpdebug, nil)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "debug server on %s (/metrics, /debug/pprof/)\n", dbg.URL)
		opts.Live = obs.LiveCounters
	}

	// Normalize up front so flag mistakes fail before the kernel starts.
	opts, err = opts.Normalize()
	if err != nil {
		return err
	}

	// Ctrl-C ends the stream early; the partial accounting still reports.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, runErr := rtrbench.Stream(ctx, opts)
	cancelled := runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded))
	if runErr != nil && !cancelled {
		return runErr
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("--out: %w", err)
		}
		defer f.Close()
		w = f
	}

	kr := report.Stream(res)
	switch *format {
	case "json":
		if err := obs.WriteJSON(w, kr); err != nil {
			return err
		}
	case "csv":
		if err := obs.WriteCSV(w, kr); err != nil {
			return err
		}
	case "text":
		streamText(w, res, cancelled)
	default:
		return fmt.Errorf("unknown --format %q (want text, json, or csv)", *format)
	}
	return nil
}

// parseStreamPolicy wraps stream policy parsing behind the rtrbench API so
// this file stays off internal/stream directly.
func parseStreamPolicy(s string) (rtrbench.StreamPolicy, error) {
	return rtrbench.ParseStreamPolicy(s)
}

// streamText prints the human-readable streaming summary.
func streamText(w io.Writer, res rtrbench.StreamResult, cancelled bool) {
	s := res.Stream
	note := ""
	if cancelled {
		note = " (interrupted; partial accounting)"
	}
	fmt.Fprintf(w, "stream: %s  policy=%s  period=%v  deadline=%v%s\n",
		res.Kernel, s.Policy, s.Period, s.Deadline, note)
	fmt.Fprintf(w, "  ticks %d  misses %d (%.2f%%)  sheds %d  cutoffs %d  overruns %d  elapsed %v\n",
		s.Ticks, s.Misses, s.MissRate()*100, s.Sheds, s.Cutoffs, s.Overruns,
		s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  workload runs %d (degraded %d)\n", res.Runs, res.Degraded)
	if s.Latency.Count > 0 {
		fmt.Fprintf(w, "  latency  p50 %v  p95 %v  p99 %v  max %v\n",
			s.Latency.P50.Round(time.Microsecond), s.Latency.P95.Round(time.Microsecond),
			s.Latency.P99.Round(time.Microsecond), s.Latency.Max.Round(time.Microsecond))
	}
	if s.Jitter.Count > 0 {
		fmt.Fprintf(w, "  jitter   p50 %v  p95 %v  p99 %v  max %v\n",
			s.Jitter.P50.Round(time.Microsecond), s.Jitter.P95.Round(time.Microsecond),
			s.Jitter.P99.Round(time.Microsecond), s.Jitter.Max.Round(time.Microsecond))
	}
}
