// Command benchjson converts `go test -bench` text output (read from
// stdin) into the suite's machine-readable benchmark snapshot, one JSON
// document per invocation:
//
//	{
//	  "schema": "rtrbench.bench/v2",
//	  "date": "2026-08-07",
//	  "go": "go1.24.0",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "goldens": {"pfl-seed1": "<sha256 of the checked-in digest>", ...},
//	  "benchmarks": [
//	    {"name": "BenchmarkEKFSLAMStep", "pkg": "repro/internal/core/ekfslam",
//	     "procs": 8,
//	     "samples": [
//	       {"iterations": 100, "ns_op": 23492, "b_op": 0, "allocs_op": 0},
//	       {"iterations": 100, "ns_op": 23510, "b_op": 0, "allocs_op": 0}
//	     ]},
//	    ...
//	  ]
//	}
//
// Repeated result lines for the same benchmark — from `go test -count N` —
// merge into that benchmark's samples list, which is what makes the
// snapshot statistically comparable by cmd/benchdiff. b_op/allocs_op are
// present only when the input was produced with -benchmem. -goldens stamps
// the snapshot with the SHA-256 of every golden digest file, pinning the
// numbers to a verified-correct build. -split "A.json,B.json" writes two
// interleaved half-snapshots instead (alternate samples of every
// benchmark), the drift-immune A/A construction the CI gate self-test
// compares. scripts/bench.sh pipes the full per-kernel run through this
// tool to produce BENCH_<date>.json.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	dateFlag := flag.String("date", "", "date stamp for the report (default: today, UTC)")
	outFlag := flag.String("out", "", "output file (default: stdout)")
	goldenDir := flag.String("goldens", "", "golden digest directory to stamp into the snapshot (e.g. rtrbench/testdata/golden)")
	splitFlag := flag.String("split", "", `write two snapshots "A.json,B.json" instead of one: alternate samples of every benchmark go to A and B (interleaved A/A construction for gate self-tests)`)
	flag.Parse()

	date := *dateFlag
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	snap := benchfmt.Snapshot{
		Schema:     benchfmt.SchemaV2,
		Date:       date,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	if *goldenDir != "" {
		goldens, err := goldenSums(*goldenDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: goldens:", err)
			os.Exit(1)
		}
		snap.Goldens = goldens
	}

	if err := snap.ParseStream(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	if *splitFlag != "" {
		parts := strings.Split(*splitFlag, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, `benchjson: -split wants "A.json,B.json"`)
			os.Exit(1)
		}
		a, b := snap.SplitAlternate()
		// A benchmark with a single sample lands only in a: refuse rather
		// than compare a benchmark against nothing.
		if len(a.Benchmarks) != len(b.Benchmarks) {
			fmt.Fprintln(os.Stderr, "benchjson: -split: some benchmark has fewer than 2 samples (run with -count >= 2)")
			os.Exit(1)
		}
		for i, half := range []*benchfmt.Snapshot{&a, &b} {
			if err := writeSnapshot(half, strings.TrimSpace(parts[i])); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
		return
	}

	if err := writeSnapshot(&snap, *outFlag); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// writeSnapshot encodes to path, or stdout when path is empty.
func writeSnapshot(s *benchfmt.Snapshot, path string) error {
	buf, err := s.Encode()
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	if path == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// goldenSums maps every *.golden file under dir (stem, without extension)
// to the SHA-256 of its bytes. An empty directory is an error: stamping an
// empty golden set would silently claim an unverified build.
func goldenSums(dir string) (map[string]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.golden"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no *.golden files in %s", dir)
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(data)
		stem := strings.TrimSuffix(filepath.Base(p), ".golden")
		out[stem] = hex.EncodeToString(sum[:])
	}
	return out, nil
}
