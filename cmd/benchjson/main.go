// Command benchjson converts `go test -bench` text output (read from stdin)
// into the suite's machine-readable benchmark schema, one JSON document per
// invocation:
//
//	{
//	  "schema": "rtrbench.bench/v1",
//	  "date": "2026-08-05",
//	  "go": "go1.22.1",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "BenchmarkEKFSLAMStep", "pkg": "repro/internal/core/ekfslam",
//	     "procs": 8, "iterations": 100, "ns_op": 23492,
//	     "b_op": 0, "allocs_op": 0},
//	    ...
//	  ]
//	}
//
// b_op/allocs_op are present only when the input was produced with
// -benchmem. scripts/bench.sh pipes the full per-kernel run through this
// tool to produce BENCH_<date>.json; two such files diff cleanly for
// before/after comparisons.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg,omitempty"`
	Procs      int     `json:"procs,omitempty"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BOp        *int64  `json:"b_op,omitempty"`
	AllocsOp   *int64  `json:"allocs_op,omitempty"`
	MBs        float64 `json:"mb_s,omitempty"`
}

type report struct {
	Schema     string      `json:"schema"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	dateFlag := flag.String("date", "", "date stamp for the report (default: today, UTC)")
	outFlag := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()

	date := *dateFlag
	if date == "" {
		date = time.Now().UTC().Format("2006-01-02")
	}
	rep := report{
		Schema: "rtrbench.bench/v1",
		Date:   date,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *outFlag == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*outFlag, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   100   23492 ns/op   0 B/op   0 allocs/op
//
// Unknown trailing metric pairs are ignored, so custom b.ReportMetric units
// do not break parsing.
func parseBenchLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return benchmark{}, false
	}
	var b benchmark
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b.Iterations = iters
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.NsOp, seenNs = v, true
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.BOp = &v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				b.AllocsOp = &v
			}
		case "MB/s":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				b.MBs = v
			}
		}
	}
	return b, seenNs
}
