package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkEKFSLAMStep-8   \t  100\t     23492 ns/op\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a valid -benchmem line")
	}
	if b.Name != "BenchmarkEKFSLAMStep" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 100 || b.NsOp != 23492 {
		t.Fatalf("iterations/ns_op = %d/%v", b.Iterations, b.NsOp)
	}
	if b.BOp == nil || *b.BOp != 0 || b.AllocsOp == nil || *b.AllocsOp != 0 {
		t.Fatalf("b_op/allocs_op = %v/%v", b.BOp, b.AllocsOp)
	}
}

func TestParseBenchLineNoBenchmem(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkTable1_01_pfl \t 1\t1234567890 ns/op")
	if !ok {
		t.Fatal("parseBenchLine rejected a valid line without -benchmem")
	}
	if b.Name != "BenchmarkTable1_01_pfl" || b.Procs != 0 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.BOp != nil || b.AllocsOp != nil {
		t.Fatal("memory fields should be absent without -benchmem")
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", // no fields
		"BenchmarkFoo-4 notanumber 5 ns/op",
		"PASS",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
