package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGoldenSums(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pfl-seed1.golden"), []byte("# digest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bo-seed42.golden"), []byte("# other\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sums, err := goldenSums(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("got %d sums, want 2: %v", len(sums), sums)
	}
	for _, stem := range []string{"pfl-seed1", "bo-seed42"} {
		if len(sums[stem]) != 64 {
			t.Fatalf("%s: sum %q is not a sha256 hex", stem, sums[stem])
		}
	}
	if sums["pfl-seed1"] == sums["bo-seed42"] {
		t.Fatal("different files hashed identically")
	}
}

func TestGoldenSumsEmptyDirIsError(t *testing.T) {
	if _, err := goldenSums(t.TempDir()); err == nil {
		t.Fatal("empty golden dir accepted — would stamp an unverified build")
	}
}

func TestGoldenSumsRealGoldens(t *testing.T) {
	// The checked-in goldens must stamp cleanly (the bench.sh path).
	sums, err := goldenSums("../../rtrbench/testdata/golden")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sums["pfl-seed1"]; !ok {
		t.Fatalf("pfl-seed1 missing from stamped goldens: %v", sums)
	}
}
