// Package repro is RTRBench-Go: a Go reproduction of "RTRBench: A Benchmark
// Suite for Real-Time Robotics" (Bakhshalipour, Likhachev, Gibbons —
// ISPASS 2022).
//
// The public API lives in repro/rtrbench; the sixteen kernels live under
// internal/core and the substrates they share under internal/. The root
// package only anchors the repository-level benchmark harness
// (bench_test.go), whose benchmarks regenerate every table and figure of
// the paper's evaluation — see DESIGN.md for the experiment index and
// EXPERIMENTS.md for measured results.
package repro
