// delivery2d composes three RTRBench kernels into the classic mobile-robot
// stack of the paper's Fig. 1 — Sense → Plan → Act — for a delivery car in
// a synthetic city:
//
//  1. Perception: particle filter localization (pfl) estimates where the
//     car is on the city map from laser + odometry.
//  2. Planning: A* with footprint collision checking (pp2d) plans a route
//     from the estimated pose to the depot.
//  3. Control: model predictive control (mpc) tracks the planned route
//     under velocity and acceleration limits.
//
// Each stage prints its output quality and its compute profile, showing how
// the pipeline stages stress completely different bottlenecks (ray casting
// vs. collision detection vs. optimization) — the core motivation for a
// whole-pipeline benchmark suite.
//
//	go run ./examples/delivery2d
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core/mpc"
	"repro/internal/core/pfl"
	"repro/internal/core/pp2d"
	"repro/internal/geom"
	"repro/internal/maps"
	"repro/internal/profile"
	"repro/internal/trajectory"
	"repro/internal/viz"
)

func main() {
	const seed = 1
	city := pp2d.DefaultMap(256, seed) // 128 m x 128 m city at 0.5 m

	fmt.Println("delivery2d: perception -> planning -> control on one city map")
	fmt.Printf("city: %dx%d cells, %.0f%% occupied\n\n",
		city.W, city.H, 100*float64(city.CountOccupied())/float64(city.W*city.H))

	// --- Stage 1: Perception (localization).
	locCfg := pfl.DefaultConfig()
	locCfg.Map = city
	locCfg.Particles = 800
	locCfg.Steps = 50
	// A delivery robot knows its depot; it starts from a coarse prior
	// around its true starting pose.
	sx, sy := maps.FreeCellNear(city, city.W/8, city.H/8)
	wx, wy := city.CellToWorld(sx, sy)
	start := geom.Pose2{X: wx, Y: wy}
	locCfg.Start = &start
	prior := start
	locCfg.TrackingPrior = &prior
	locCfg.TrackingSpread = 2

	locProf := profile.New()
	loc, err := pfl.Run(context.Background(), locCfg, locProf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("[perception] pose estimate error %.2f m after %d scans (%v)\n",
		loc.PositionError, locCfg.Steps, locProf.Snapshot().ROI.Round(time.Millisecond))
	fmt.Printf("[perception] dominant phase: %s (%.0f%%)\n\n",
		locProf.Snapshot().Dominant(), 100*locProf.Snapshot().Fraction("raycast"))

	// --- Stage 2: Planning from the *estimated* pose to the depot. The
	// estimate is snapped to the nearest cell where the car's footprint
	// fits.
	planCfg := pp2d.DefaultConfig()
	ex, ey := city.WorldToCell(loc.Estimate.X, loc.Estimate.Y)
	startX, startY, ok := pp2d.FeasibleCellNear(city, planCfg.CarLength, planCfg.CarWidth, ex, ey)
	if !ok {
		panic("no feasible start near the estimate")
	}
	goalX, goalY, ok := pp2d.FeasibleCellNear(city, planCfg.CarLength, planCfg.CarWidth,
		city.W-city.W/8, city.H-city.H/8)
	if !ok {
		panic("no feasible goal")
	}
	planCfg.Map = city
	planCfg.StartX, planCfg.StartY = startX, startY
	planCfg.GoalX, planCfg.GoalY = goalX, goalY
	planProf := profile.New()
	plan, err := pp2d.Run(context.Background(), planCfg, planProf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("[planning] route: %.0f m over %d waypoints (%v, %d collision checks)\n",
		plan.PathLength, len(plan.Path), planProf.Snapshot().ROI.Round(time.Millisecond), plan.Checks)
	fmt.Printf("[planning] dominant phase: %s (%.0f%%)\n\n",
		planProf.Snapshot().Dominant(), 100*planProf.Snapshot().Fraction("collision"))

	// --- Stage 3: Control along the planned route.
	ref := routeToTrajectory(plan.Path, city.W, city.Resolution, 5 /* m/s */)
	ctlCfg := mpc.DefaultConfig()
	ctlCfg.Reference = ref
	ctlCfg.Steps = 200
	ctlProf := profile.New()
	ctl, err := mpc.Run(context.Background(), ctlCfg, ctlProf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("[control] tracked the route at 5 m/s: RMS error %.2f m, max %.2f m, %d velocity violations (%v)\n",
		ctl.TrackRMSE, ctl.MaxDeviation, ctl.VelViolations, ctlProf.Snapshot().ROI.Round(time.Millisecond))
	fmt.Printf("[control] dominant phase: %s (%.0f%%)\n",
		ctlProf.Snapshot().Dominant(), 100*ctlProf.Snapshot().Fraction("optimize"))

	// Render the world and the planned route.
	fmt.Println("\nthe city, the route (S→G), and the localization estimate (o):")
	fmt.Print(viz.NewMap(city, 72).
		Path(plan.Path).
		MarkWorld(geom.Vec2{X: loc.Estimate.X, Y: loc.Estimate.Y}).
		String())

	fmt.Println("\npipeline complete: each stage stressed a different bottleneck,")
	fmt.Println("which is why RTRBench includes kernels for all three.")
}

// routeToTrajectory converts a grid path into a timed reference trajectory
// at constant speed.
func routeToTrajectory(path []int, w int, res, speed float64) *trajectory.Trajectory {
	tr := &trajectory.Trajectory{}
	var dist float64
	var prev geom.Vec2
	for i, id := range path {
		p := geom.Vec2{
			X: (float64(id%w) + 0.5) * res,
			Y: (float64(id/w) + 0.5) * res,
		}
		if i > 0 {
			dist += p.Dist(prev)
		}
		tr.Points = append(tr.Points, trajectory.Point{T: dist / speed, P: p})
		prev = p
	}
	return tr
}
