// armlab compares the suite's four arm motion planners — PRM, RRT, RRT*,
// and RRT with post-processing — on the paper's Map-C (cluttered) and Map-F
// (free) workspaces (Fig. 9), reporting the planning-time / path-quality
// trade-off of §V.7-V.10: RRT is fast but crooked, RRT* slow but short,
// shortcutting lands in between, and PRM amortizes an offline roadmap.
//
//	go run ./examples/armlab
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/arm"
	"repro/internal/core/prm"
	"repro/internal/core/rrt"
	"repro/internal/profile"
)

func main() {
	fmt.Println("armlab: 5-DoF arm motion planning, paper Fig. 9 workspaces")
	for _, ws := range []struct {
		name  string
		build func() *arm.Workspace
	}{
		{"Map-C (cluttered)", arm.MapC},
		{"Map-F (free)", arm.MapF},
	} {
		fmt.Printf("\n== %s ==\n", ws.name)
		fmt.Printf("%-22s %12s %10s %s\n", "planner", "time", "path cost", "notes")

		// Sampling-based planners, averaged over seeds (they are stochastic).
		type stats struct {
			time time.Duration
			cost float64
			n    int
		}
		run := func(f func(context.Context, rrt.Config, *profile.Profile) (rrt.Result, error)) stats {
			var s stats
			for seed := int64(1); seed <= 3; seed++ {
				cfg := rrt.DefaultConfig()
				cfg.Workspace = ws.build()
				cfg.Seed = seed
				p := profile.New()
				r, err := f(context.Background(), cfg, p)
				if err != nil {
					continue
				}
				s.time += p.Snapshot().ROI
				s.cost += r.PathCost
				s.n++
			}
			if s.n > 0 {
				s.time /= time.Duration(s.n)
				s.cost /= float64(s.n)
			}
			return s
		}

		base := run(rrt.Run)
		pp := run(rrt.RunPP)
		star := run(rrt.RunStar)
		fmt.Printf("%-22s %12v %10.2f fast, first solution\n", "rrt", base.time.Round(time.Microsecond), base.cost)
		fmt.Printf("%-22s %12v %10.2f + shortcut smoothing\n", "rrt + post-process", pp.time.Round(time.Microsecond), pp.cost)
		fmt.Printf("%-22s %12v %10.2f rewired toward optimal\n", "rrt*", star.time.Round(time.Microsecond), star.cost)
		if base.n > 0 && star.n > 0 {
			fmt.Printf("   -> rrt* is %.1fx slower and returns %.2fx shorter paths than rrt\n",
				float64(star.time)/float64(base.time), base.cost/star.cost)
		}

		// PRM: report offline roadmap cost and the online query separately.
		cfg := prm.DefaultConfig()
		cfg.Workspace = ws.build()
		cfg.Samples = 2000
		p := profile.New()
		r, err := prm.Run(context.Background(), cfg, p)
		if err != nil {
			fmt.Printf("%-22s failed: %v\n", "prm", err)
			continue
		}
		rep := p.Snapshot()
		offline := time.Duration(0)
		if s, ok := rep.Phase("sample"); ok {
			offline += s.Total
		}
		if c, ok := rep.Phase("connect"); ok {
			offline += c.Total
		}
		online, _ := rep.Phase("query")
		fmt.Printf("%-22s %12v %10.2f online query only (offline roadmap: %v, %d nodes / %d edges)\n",
			"prm", online.Total.Round(time.Microsecond), r.PathCost,
			offline.Round(time.Millisecond), r.RoadmapNodes, r.RoadmapEdges)
	}

	fmt.Println("\nAs in the paper: collision detection dominates the online planners;")
	fmt.Println("PRM pays its cost offline but 'the online search process is on the critical path'.")
}
