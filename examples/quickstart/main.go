// Quickstart: run a couple of RTRBench-Go kernels through the public API
// and print their characterization — the suite's minimal end-to-end tour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/rtrbench"
)

func main() {
	fmt.Println("RTRBench-Go quickstart")
	fmt.Println("======================")

	// 1. Run one kernel and inspect its phase breakdown.
	res, err := rtrbench.Run("pfl", rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nparticle filter localization finished in %v\n", res.ROI.Round(time.Millisecond))
	fmt.Printf("dominant phase: %s (%.0f%% of the region of interest)\n",
		res.Dominant(), 100*res.Fraction(res.Dominant()))
	fmt.Printf("rays cast: %.0f, occupancy cells traversed: %.0f\n",
		res.Metric("raycasts"), res.Metric("cells_visited"))

	// 2. Check the whole suite against the paper's Table I.
	fmt.Println("\nTable I check (small inputs):")
	fmt.Printf("%-4s %-10s %-12s %-14s %s\n", "#", "kernel", "stage", "dominant", "matches paper?")
	for _, k := range rtrbench.Kernels() {
		r, err := rtrbench.Run(k.Name, rtrbench.Options{Size: rtrbench.SizeSmall, Seed: 1})
		if err != nil {
			fmt.Printf("%-4d %-10s ERROR %v\n", k.Index, k.Name, err)
			continue
		}
		match := "no"
		for _, e := range k.ExpectDominant {
			if e == r.Dominant() {
				match = "yes"
			}
		}
		fmt.Printf("%-4d %-10s %-12s %-14s %s\n", k.Index, k.Name, k.Stage, r.Dominant(), match)
	}

	// 3. Figure 15-style output: the DMP velocity profile.
	res, err = rtrbench.Run("dmp", rtrbench.Options{Size: rtrbench.SizeSmall})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nDMP velocity profile (paper Fig. 15 right):")
	sparkline(res.Series["velocity"], 60)
}

// sparkline prints a crude text plot of a series.
func sparkline(xs []float64, width int) {
	if len(xs) == 0 {
		return
	}
	var max float64
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	step := len(xs) / width
	if step == 0 {
		step = 1
	}
	levels := []rune(" .:-=+*#%@")
	out := make([]rune, 0, width)
	for i := 0; i < len(xs); i += step {
		l := int(xs[i] / max * float64(len(levels)-1))
		out = append(out, levels[l])
	}
	fmt.Printf("  |%s|  peak %.2f m/s\n", string(out), max)
}
