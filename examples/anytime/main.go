// anytime demonstrates the suite's ARA* extension (Anytime Repairing A* —
// Likhachev, Gordon & Thrun) on the pp2d city planner: the robot gets a
// usable route almost immediately at a high heuristic inflation, then keeps
// improving it toward optimal while reusing the earlier search effort —
// the planning pattern real-time robots use when the clock matters more
// than optimality.
//
//	go run ./examples/anytime
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core/pp2d"
	"repro/internal/profile"
)

func main() {
	fmt.Println("anytime: ARA* on the city planner")

	cfg := pp2d.DefaultConfig()
	cfg.Map = pp2d.DefaultMap(384, 1)
	cfg.AnytimeSchedule = []float64{5, 3, 2, 1.5, 1.2, 1}

	p := profile.New()
	start := time.Now()
	res, err := pp2d.Run(context.Background(), cfg, p)
	if err != nil {
		panic(err)
	}
	total := time.Since(start)

	fmt.Printf("\n%-8s %14s %12s %10s\n", "epsilon", "path length", "expansions", "bound")
	for _, r := range res.Anytime {
		fmt.Printf("%-8.1f %12.1f m %12d  <= %.1fx optimal\n",
			r.Epsilon, r.PathLength, r.Expanded, r.Epsilon)
	}
	fmt.Printf("\nfinal path: %.1f m (provably optimal), total time %v\n",
		res.PathLength, total.Round(time.Millisecond))

	// Compare against solving each inflation independently.
	indep := 0
	for _, eps := range cfg.AnytimeSchedule {
		c := cfg
		c.AnytimeSchedule = nil
		c.Weight = eps
		r, err := pp2d.Run(context.Background(), c, profile.Disabled())
		if err != nil {
			panic(err)
		}
		indep += r.Expanded
	}
	fmt.Printf("search-effort reuse: ARA* expanded %d states total; independent WA* runs would expand %d (%.1fx more)\n",
		res.Expanded, indep, float64(indep)/float64(res.Expanded))
}
