// replan demonstrates the suite's D* Lite extension: a delivery robot
// drives through the city while roads close in front of it. Instead of
// replanning from scratch after each closure, D* Lite repairs its previous
// search — the incremental pattern used by real navigation stacks when the
// paper's static-world planning kernels meet a changing world.
//
//	go run ./examples/replan
package main

import (
	"fmt"
	"math"

	"repro/internal/core/pp2d"
	"repro/internal/maps"
	"repro/internal/search"
)

func main() {
	city := pp2d.DefaultMap(256, 3)
	sp := &search.Grid2DSpace{G: city}
	sx, sy := maps.FreeCellNear(city, 20, 20)
	gx, gy := maps.FreeCellNear(city, 235, 235)
	start, goal := sp.ID(sx, sy), sp.ID(gx, gy)

	w := city.W
	h := func(a, b int) float64 {
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		dx := math.Abs(float64(ax - bx))
		dy := math.Abs(float64(ay - by))
		if dx < dy {
			dx, dy = dy, dx
		}
		return dx + (math.Sqrt2-1)*dy
	}

	fmt.Println("replan: D* Lite driving through a changing city")
	d := search.NewIncremental(sp, start, goal, h)
	path, cost, err := d.Plan()
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial route: %.1f m, %d expansions\n",
		cost*city.Resolution, d.Expanded)

	// The robot drives; every ~60 cells a road closes just ahead of it.
	totalRepair := 0
	for leg := 1; leg <= 3; leg++ {
		// Advance the robot 40 steps along the current path.
		idx := 40
		if idx >= len(path)-1 {
			break
		}
		d.MoveTo(path[idx])

		// Close the road a little further along the route.
		blockAt := idx + 15
		if blockAt >= len(path)-1 {
			break
		}
		bx, by := sp.Cell(path[blockAt])
		var changed []int
		for dy := -3; dy <= 3; dy++ {
			for dx := -3; dx <= 3; dx++ {
				if city.InBounds(bx+dx, by+dy) && city.Free(bx+dx, by+dy) {
					city.Set(bx+dx, by+dy, true)
					changed = append(changed, sp.ID(bx+dx, by+dy))
				}
			}
		}
		d.NotifyChanged(changed...)

		before := d.Expanded
		path, cost, err = d.Plan()
		if err != nil {
			fmt.Printf("leg %d: road closure cut the city in two — no route\n", leg)
			return
		}
		repair := d.Expanded - before
		totalRepair += repair
		fmt.Printf("leg %d: closure at (%d,%d); repaired route %.1f m with %d expansions\n",
			leg, bx, by, cost*city.Resolution, repair)
	}

	// Compare against a from-scratch search on the final world.
	fresh, err := search.Solve(search.Problem{
		Space: sp, Start: path[0], Goal: goal,
		H: sp.OctileHeuristic(gx, gy),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nall repairs together: %d expansions; one fresh A* on the final map: %d\n",
		totalRepair, fresh.Expanded)
	fmt.Printf("same optimal cost? %v (D* %.2f vs A* %.2f)\n",
		math.Abs(cost-fresh.Cost) < 1e-6, cost, fresh.Cost)
}
