// learnthrow reproduces the learning-based control scenario of §V.15-V.16:
// a 2-DoF arm learns to throw a ball at a target, first with the
// cross-entropy method (Fig. 18: 5 iterations x 15 samples), then with
// Bayesian optimization (Fig. 19: 45 iterations of GP-UCB), printing the
// reward curves and comparing the two learners' compute profiles.
//
//	go run ./examples/learnthrow
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core/bo"
	"repro/internal/core/cem"
	"repro/internal/physics"
	"repro/internal/profile"
)

func main() {
	world := physics.DefaultWorld()
	fmt.Printf("learnthrow: hit a target %.1f m away with a %.1f m arm on a %.1f m pedestal\n",
		world.GoalX, world.Link1+world.Link2, world.BaseHeight)

	// --- CEM (paper Fig. 18).
	cemCfg := cem.DefaultConfig()
	p1 := profile.New()
	cemRes, err := cem.Run(context.Background(), cemCfg, p1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n== cross-entropy method: %d iterations x %d samples ==\n",
		cemCfg.Iterations, cemCfg.SamplesPerIter)
	fmt.Println("best reward per iteration (0 = perfect hit):")
	for i, r := range cemRes.BestPerIter {
		fmt.Printf("  iter %d: %7.3f %s\n", i+1, r, bar(r))
	}
	fmt.Printf("best throw: joints (%.2f, %.2f) rad, force %.1f N -> lands %.2f m from target\n",
		cemRes.BestParams.Joint1, cemRes.BestParams.Joint2, cemRes.BestParams.Force, -cemRes.BestReward)
	rep1 := p1.Snapshot()
	fmt.Printf("learning compute: %v; sort share %.0f%% (paper: ~1/3)\n",
		rep1.ROI.Round(time.Microsecond), 100*rep1.Fraction("sort"))

	// --- BO (paper Fig. 19).
	boCfg := bo.DefaultConfig()
	p2 := profile.New()
	boRes, err := bo.Run(context.Background(), boCfg, p2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n== Bayesian optimization: %d GP-UCB iterations ==\n", boCfg.Iterations)
	fmt.Println("reward of each BO-chosen sample (every 5th):")
	for i := boCfg.InitSamples; i < len(boRes.Rewards); i += 5 {
		fmt.Printf("  iter %2d: %7.3f %s\n", i-boCfg.InitSamples+1, boRes.Rewards[i], bar(boRes.Rewards[i]))
	}
	fmt.Printf("best throw: joints (%.2f, %.2f) rad, force %.1f N -> lands %.2f m from target\n",
		boRes.BestParams.Joint1, boRes.BestParams.Joint2, boRes.BestParams.Force, -boRes.BestReward)
	rep2 := p2.Snapshot()
	fmt.Printf("learning compute: %v (%d GP posterior evaluations)\n",
		rep2.ROI.Round(time.Microsecond), boRes.Predictions)

	// --- The §V.16 comparison.
	fmt.Printf("\nbo vs cem compute: %.0fx more learning time, sort phase %.1fx heavier\n",
		float64(rep2.ROI)/float64(rep1.ROI), sortRatio(rep2, rep1))
}

func sortRatio(a, b profile.Report) float64 {
	sa, _ := a.Phase("sort")
	sb, _ := b.Phase("sort")
	if sb.Total == 0 {
		return 0
	}
	return float64(sa.Total) / float64(sb.Total)
}

// bar draws a reward as a text bar: longer is better (closer to zero).
func bar(reward float64) string {
	miss := -reward
	n := int(20 - miss*4)
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
