// firefighter demonstrates the symbolic planning kernels (§V.11-V.12):
// it solves the blocks-world tower reversal and the MIT-summer-school
// firefighting mission with the same domain-independent planner, prints
// the plans, and reports the branching-factor difference behind the
// paper's parallelism observation.
//
//	go run ./examples/firefighter
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core/sym"
	"repro/internal/profile"
)

func main() {
	fmt.Println("firefighter: one symbolic planner, two domains")

	// --- Blocks world: reverse a 6-block tower.
	blkCfg := sym.DefaultConfig(sym.BlocksWorld)
	blkCfg.Blocks = 6
	p1 := profile.New()
	blk, err := sym.Run(context.Background(), blkCfg, p1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n== blocks world (%d blocks, reverse the tower) ==\n", blkCfg.Blocks)
	fmt.Printf("plan of %d actions found in %v after %d expansions:\n",
		blk.PlanLength, p1.Snapshot().ROI.Round(time.Millisecond), blk.Stats.Expanded)
	printPlan(blk.Plan)

	// --- Firefighting: quadcopter + mobile robot, three pours.
	ffCfg := sym.DefaultConfig(sym.Firefighter)
	p2 := profile.New()
	ff, err := sym.Run(context.Background(), ffCfg, p2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n== firefighting mission (%d locations, fire needs %d pours) ==\n",
		ffCfg.Locations, ffCfg.Pours)
	fmt.Printf("plan of %d actions found in %v after %d expansions:\n",
		ff.PlanLength, p2.Snapshot().ROI.Round(time.Millisecond), ff.Stats.Expanded)
	printPlan(ff.Plan)

	// --- The paper's §V.12 observation.
	fmt.Printf("\nbranching factor (applicable actions per expanded state):\n")
	fmt.Printf("  blocks world: %.2f\n", blk.Stats.AvgBranching())
	fmt.Printf("  firefighting: %.2f  (%.1fx more parallelism; paper: ~3.2x)\n",
		ff.Stats.AvgBranching(), ff.Stats.AvgBranching()/blk.Stats.AvgBranching())
	fmt.Printf("string work: %d bytes (blkw) vs %d bytes (fext) hashed/joined\n",
		blk.Stats.StringBytes, ff.Stats.StringBytes)
}

func printPlan(steps []string) {
	for i, s := range steps {
		fmt.Printf("  %2d. %s\n", i+1, s)
	}
}
